// Compiled-path forwarding engine.
//
// The topology of a built world is static: the realm a packet ascends
// from and the address it is headed to fully determine the device path —
// the ordered NAT chain, every plain-router hop count along the way, and
// the terminal attachment. The reference walk (network.go) rediscovers
// all of that per packet: a map lookup per realm, an interface
// type-switch per attachment, a linear IsExternal scan per NAT, and a Go
// loop iteration per router hop. At campaign scale that per-packet work
// dominates the simulator.
//
// The engine here compiles the walk once per (source realm, destination
// address) pair into a flat []pathStep: each step carries the NAT device
// it crosses and the cumulative hop count consumed before that NAT
// processes the packet (a prefix sum over every earlier router and NAT
// hop). Subsequent packets replay the slice — TTL expiry becomes an
// integer comparison against the prefix sums instead of a per-hop
// decrement loop, and the route itself needs zero map lookups and zero
// type-switches. NAT translation (and its state mutation) still executes
// per packet, exactly where the walk would run it; only the routing
// around it is precomputed.
//
// Two pieces stay dynamic per packet:
//
//   - The inbound descend below a destination-fronting NAT: the
//     translated destination depends on the NAT mapping the packet hits,
//     so the resolution in the inner realm is cached per
//     (NATDev, translated dst) on the device (NATDev.inTail) rather than
//     in the route.
//   - Handler dispatch at the destination host: Bind/Unbind change at
//     runtime.
//
// The reference walk survives untouched as the slow path. It is used
// verbatim when loss is enabled — per-hop Bernoulli draws must consume
// the loss RNG hop by hop, identically — when the engine is disabled via
// SetFastPath(false), and for any route deeper than maxCompileSteps.
// Differential tests pin the two paths byte-identical: Results, metric
// counters, trace labels and NAT state digests.
//
// Caches invalidate by generation: every topology mutation (attachment
// registration, NAT installation) bumps Network.topoGen, and a cached
// route or tail entry compiled under an older generation is recompiled
// on next use.
package simnet

import (
	"cgn/internal/nat"
	"cgn/internal/netaddr"
)

// routeKey identifies one compiled route. Packets from any host of the
// same realm toward the same destination address share the device path;
// only the sender's own access hops differ, and those are applied before
// the route replays. The realm is keyed by its dense creation index
// rather than its pointer so the key is pointer-free: the first-packet
// "seen" set (see routeFor) then holds no pointers at all and the GC
// skips its buckets — at campaign scale that set tracks every contacted
// (realm, dst) pair, and scanning it was measurable across a sweep.
type routeKey struct {
	realm uint32
	dst   netaddr.Addr
}

// stepKind is what a pathStep does once the packet has survived the hops
// leading up to it.
type stepKind uint8

const (
	// stepNAT translates outbound at dev and crosses it (ascent).
	stepNAT stepKind = iota
	// stepHairpin turns the packet around inside dev; the rest of the
	// path depends on the mapping hit and resolves via dev.inTail.
	stepHairpin
	// stepDescend enters the inbound NAT chain fronting the destination.
	stepDescend
	// stepDeliver hands the packet to the resolved terminal host.
	stepDeliver
	// stepUnreachable reports that the ascent ran out of realms.
	stepUnreachable
)

// pathStep is one precompiled step of a route.
type pathStep struct {
	kind stepKind
	dev  *NATDev // stepNAT, stepHairpin, stepDescend
	host *Host   // stepDeliver: the resolved terminal attachment
	// pre is the cumulative router+NAT hop count consumed before this
	// step acts, relative to route start (the sender's access hops are
	// excluded — they vary per host and are charged by the caller). A
	// packet with ttl <= pre at route start dies before reaching the
	// step.
	pre int
}

// opKind tags one instruction of a route's trace-replay program.
type opKind uint8

const (
	// opHops consumes hops router hops, recording label once per hop.
	opHops opKind = iota
	// opAct executes the route's next pathStep (NAT translation,
	// hairpin turn, descend entry, delivery or unreachable verdict).
	opAct
)

// op is one instruction of the trace program. The arithmetic fast path
// never touches ops; TracePath replays them so fast-path traces carry
// exactly the labels the reference walker would record, in order.
type op struct {
	kind  opKind
	hops  int
	label string
	step  int // opAct: index into route.steps
}

// route is a compiled forwarding path.
type route struct {
	// gen is the topology generation the route was compiled under.
	gen uint64
	// steps is the replayed path: the ordered NAT chain plus exactly one
	// terminal step.
	steps []pathStep
	// ops is the trace-replay program (hop labels interleaved with the
	// steps above). Compiled lazily on the first TracePath over the
	// route: most routes serve sends only, and campaign traffic touches
	// enough unique (realm, dst) pairs that the extra allocation per
	// route is measurable sweep-wide.
	ops []op
}

// maxCompileSteps bounds route compilation. The reference walk
// terminates on cyclic topologies only because TTL runs out; the
// compiler has no TTL, so ascents deeper than this fall back to the slow
// path forever rather than looping.
const maxCompileSteps = 256

// tail is the cached inbound descend resolution for one
// (NATDev, translated destination) pair: at most one of host/next is
// set; neither set means unreachable.
type tail struct {
	gen  uint64
	host *Host
	next *NATDev
}

// tailFor resolves the attachment answering for a in d's inner realm,
// through the per-device cache.
func (d *NATDev) tailFor(a netaddr.Addr, n *Network) tail {
	if t, ok := d.inTail[a]; ok && t.gen == n.topoGen {
		return t
	}
	t := tail{gen: n.topoGen}
	switch att := d.inner.attach[a].(type) {
	case *Host:
		t.host = att
	case *NATDev:
		t.next = att
	}
	if d.inTail == nil {
		d.inTail = make(map[netaddr.Addr]tail)
	}
	d.inTail[a] = t
	return t
}

// fastOK reports whether sends may take the compiled path. Loss mode
// must walk hop by hop so the Bernoulli stream stays identical.
func (n *Network) fastOK() bool { return !n.fastOff && n.lossRate == 0 }

// routeFor returns the compiled route from realm toward dst, compiling
// or recompiling as needed. The first packet toward a destination only
// records the pair in the pointer-free seen set and returns nil (the
// caller takes the reference walk); the second pays for compilation.
// Campaign traffic (a DHT crawl especially) sends to a long tail of
// one-shot destinations — compiling those buys nothing, and the
// accumulated route objects are pure GC scan load. nil is also returned
// for routes too deep to compile (see maxCompileSteps).
func (n *Network) routeFor(realm *Realm, dst netaddr.Addr) *route {
	k := routeKey{realm.id, dst}
	if r, ok := n.routes[k]; ok && r.gen == n.topoGen {
		return r
	}
	if _, ok := n.seen[k]; !ok {
		n.seen[k] = struct{}{}
		return nil
	}
	r := n.compileRoute(realm, dst, false)
	if r != nil {
		// Uncompilable (too-deep) routes are not cached: they carry no
		// generation to validate, and the topology may since have grown
		// an attachment that shortens them.
		n.routes[k] = r
	}
	return r
}

// routeForTrace is routeFor plus the trace-replay program: TracePath
// needs the op list, which send-only routes skip. Traces are diagnostic
// and rare, so they compile immediately (no seen-set deferral).
func (n *Network) routeForTrace(realm *Realm, dst netaddr.Addr) *route {
	k := routeKey{realm.id, dst}
	if r, ok := n.routes[k]; ok && r.gen == n.topoGen && r.ops != nil {
		return r
	}
	r := n.compileRoute(realm, dst, true)
	if r != nil {
		n.routes[k] = r
	}
	return r
}

// PrecompileRoutes warms the route cache: one route per (realm, dst)
// pair over every realm of the network. World builders call it once
// construction is finished so measurement traffic starts on compiled
// paths; it is purely a warm-up — lazy compilation produces identical
// routes. It returns the number of routes compiled.
func (n *Network) PrecompileRoutes(dsts ...netaddr.Addr) int {
	compiled := 0
	for _, realm := range n.realms {
		for _, dst := range dsts {
			// Compile directly — warming must not count against the
			// seen-set deferral.
			k := routeKey{realm.id, dst}
			if r, ok := n.routes[k]; ok && r.gen == n.topoGen {
				compiled++
				continue
			}
			if r := n.compileRoute(realm, dst, false); r != nil {
				n.routes[k] = r
				compiled++
			}
		}
	}
	return compiled
}

// compileRoute walks the topology — not a packet — from realm toward
// dst and emits the step slice (plus, when withOps is set, the trace
// program). It reads only static structure: attachment tables, upstream
// pointers, hop counts and NAT pool membership. No NAT state is touched
// and no RNG consumed.
func (n *Network) compileRoute(realm *Realm, dst netaddr.Addr, withOps bool) *route {
	r := &route{gen: n.topoGen, steps: make([]pathStep, 0, 4)}
	cum := 0
	hops := func(k int, label string) {
		if k > 0 {
			if withOps {
				r.ops = append(r.ops, op{kind: opHops, hops: k, label: label})
			}
			cum += k
		}
	}
	act := func(s pathStep) {
		s.pre = cum
		if withOps {
			r.ops = append(r.ops, op{kind: opAct, step: len(r.steps)})
		}
		r.steps = append(r.steps, s)
	}
	for {
		if att, ok := realm.attach[dst]; ok {
			hops(realm.fabricHops, realm.lblFabric)
			switch a := att.(type) {
			case *Host:
				act(pathStep{kind: stepDeliver, host: a})
			case *NATDev:
				act(pathStep{kind: stepDescend, dev: a})
			default:
				panic("simnet: unknown attachment type")
			}
			return r
		}
		dev := realm.up
		if dev == nil {
			act(pathStep{kind: stepUnreachable})
			return r
		}
		hops(dev.innerHops, dev.lblInner)
		if dev.NAT.IsExternal(dst) {
			act(pathStep{kind: stepHairpin, dev: dev})
			return r
		}
		act(pathStep{kind: stepNAT, dev: dev})
		if len(r.steps) > maxCompileSteps {
			return nil
		}
		hops(1, dev.lblNAT)
		hops(dev.outerHops, dev.lblOuter)
		realm = dev.outer
	}
}

// fastExpire reports a TTL death on the arithmetic path. Hops equals the
// initial TTL: the reference walker decrements once per hop and dies
// exactly when the budget is spent.
func (n *Network) fastExpire(ttl int) Result {
	n.cTTLExpired.Inc()
	return Result{Reason: DropTTLExpired, Hops: ttl}
}

// fastWalk replays a compiled route. ttl is the packet's full initial
// TTL and base the hops already consumed leaving the sender's access
// network; every step's prefix sum is offset by base. Translation state
// mutates exactly as on the reference walk.
func (n *Network) fastWalk(f netaddr.Flow, r *route, ttl, base int, payload []byte) Result {
	now := n.clock.now
	for i := range r.steps {
		s := &r.steps[i]
		if ttl <= base+s.pre {
			return n.fastExpire(ttl)
		}
		switch s.kind {
		case stepNAT:
			out, v := s.dev.NAT.TranslateOut(f, now)
			if v != nat.Ok {
				n.cNATDropped.Inc()
				return Result{Reason: DropNAT, NATVerdict: v, Hops: base + s.pre}
			}
			f = out
		case stepHairpin:
			res, v := s.dev.NAT.Hairpin(f, now)
			if v != nat.Ok {
				n.cNATDropped.Inc()
				return Result{Reason: DropNAT, NATVerdict: v, Hops: base + s.pre}
			}
			// The hairpin hop plus the inner routers back down, then the
			// mapping-dependent resolution in the device's inner realm.
			return n.fastTail(s.dev, res.Flow, ttl, base+s.pre+1+s.dev.innerHops, payload)
		case stepDescend:
			return n.fastDescend(s.dev, f, ttl, base+s.pre, payload)
		case stepDeliver:
			return s.host.fastDeliver(f, payload, ttl, base+s.pre, n)
		case stepUnreachable:
			n.cUnreachable.Inc()
			return Result{Reason: DropUnreachable, Hops: base + s.pre}
		}
	}
	panic("simnet: compiled route has no terminal step")
}

// fastTail finishes a hairpin turn: cum already includes the hairpin hop
// and the inner routers, so only the TTL check, the resolution and the
// remaining descent are left.
func (n *Network) fastTail(dev *NATDev, f netaddr.Flow, ttl, cum int, payload []byte) Result {
	if ttl <= cum {
		return n.fastExpire(ttl)
	}
	t := dev.tailFor(f.Dst.Addr, n)
	switch {
	case t.host != nil:
		return t.host.fastDeliver(f, payload, ttl, cum, n)
	case t.next != nil:
		return n.fastDescend(t.next, f, ttl, cum, payload)
	default:
		n.cUnreachable.Inc()
		return Result{Reason: DropUnreachable, Hops: cum}
	}
}

// fastDescend runs the inbound NAT chain fronting the destination,
// mirroring the reference descend: outer routers, inbound translation,
// the NAT hop plus inner routers, then the per-mapping resolution.
func (n *Network) fastDescend(dev *NATDev, f netaddr.Flow, ttl, cum int, payload []byte) Result {
	now := n.clock.now
	for {
		if ttl <= cum+dev.outerHops {
			return n.fastExpire(ttl)
		}
		cum += dev.outerHops
		in, v := dev.NAT.TranslateIn(f, now)
		if v != nat.Ok {
			n.cNATDropped.Inc()
			return Result{Reason: DropNAT, NATVerdict: v, Hops: cum}
		}
		f = in
		if ttl <= cum+1+dev.innerHops {
			return n.fastExpire(ttl)
		}
		cum += 1 + dev.innerHops
		t := dev.tailFor(f.Dst.Addr, n)
		switch {
		case t.host != nil:
			return t.host.fastDeliver(f, payload, ttl, cum, n)
		case t.next != nil:
			dev = t.next
		default:
			n.cUnreachable.Inc()
			return Result{Reason: DropUnreachable, Hops: cum}
		}
	}
}

// fastDeliver is the arithmetic twin of Host.deliver: charge the host's
// access hops, then dispatch to the bound handler.
func (h *Host) fastDeliver(f netaddr.Flow, payload []byte, ttl, cum int, n *Network) Result {
	if ttl <= cum+h.extraHops {
		return n.fastExpire(ttl)
	}
	cum += h.extraHops
	fn, ok := h.handlerFor(hostPort{f.Proto, f.Dst.Port})
	if !ok {
		n.cNoListener.Inc()
		return Result{Reason: DropNoPort, Hops: cum}
	}
	n.cDelivered.Inc()
	fn(f.Src, f.Dst, f.Proto, payload)
	return Result{Reason: Delivered, Hops: cum}
}

// ---- Trace replay ----
//
// TracePath needs a label per hop, so it cannot use the prefix-sum
// shortcut; instead it replays the route's op program through the same
// walker the reference path uses, which makes label sequences identical
// by construction. NAT state is exercised exactly as on a real packet.

// traceWalk replays r's op program under w (which has already consumed
// the sender's access hops).
func (n *Network) traceWalk(f netaddr.Flow, r *route, w *walker, payload []byte) Result {
	now := n.clock.now
	for _, o := range r.ops {
		if o.kind == opHops {
			if !w.consume(o.hops, o.label, "", "") {
				return n.dropTTL(w)
			}
			continue
		}
		s := &r.steps[o.step]
		switch s.kind {
		case stepNAT:
			out, v := s.dev.NAT.TranslateOut(f, now)
			if v != nat.Ok {
				n.cNATDropped.Inc()
				return Result{Reason: DropNAT, NATVerdict: v, Hops: w.hops}
			}
			f = out
		case stepHairpin:
			res, v := s.dev.NAT.Hairpin(f, now)
			if v != nat.Ok {
				n.cNATDropped.Inc()
				return Result{Reason: DropNAT, NATVerdict: v, Hops: w.hops}
			}
			if !w.consume(1, s.dev.lblHairpin, "", "") {
				return n.dropTTL(w)
			}
			if !w.consume(s.dev.innerHops, s.dev.lblInner, "", "") {
				return n.dropTTL(w)
			}
			return n.traceTail(s.dev, res.Flow, w, payload)
		case stepDescend:
			return n.traceDescend(s.dev, f, w, payload)
		case stepDeliver:
			return s.host.deliver(f, payload, w, n)
		case stepUnreachable:
			n.cUnreachable.Inc()
			return Result{Reason: DropUnreachable, Hops: w.hops}
		}
	}
	panic("simnet: compiled route has no terminal step")
}

// traceTail resolves a hairpin turn's destination and finishes the walk.
func (n *Network) traceTail(dev *NATDev, f netaddr.Flow, w *walker, payload []byte) Result {
	t := dev.tailFor(f.Dst.Addr, n)
	switch {
	case t.host != nil:
		return t.host.deliver(f, payload, w, n)
	case t.next != nil:
		return n.traceDescend(t.next, f, w, payload)
	default:
		n.cUnreachable.Inc()
		return Result{Reason: DropUnreachable, Hops: w.hops}
	}
}

// traceDescend is fastDescend under a walker: same chain, per-hop
// labels.
func (n *Network) traceDescend(dev *NATDev, f netaddr.Flow, w *walker, payload []byte) Result {
	now := n.clock.now
	for {
		if !w.consume(dev.outerHops, dev.lblOuter, "", "") {
			return n.dropTTL(w)
		}
		in, v := dev.NAT.TranslateIn(f, now)
		if v != nat.Ok {
			n.cNATDropped.Inc()
			return Result{Reason: DropNAT, NATVerdict: v, Hops: w.hops}
		}
		f = in
		if !w.consume(1, dev.lblNAT, "", "") {
			return n.dropTTL(w)
		}
		if !w.consume(dev.innerHops, dev.lblInner, "", "") {
			return n.dropTTL(w)
		}
		t := dev.tailFor(f.Dst.Addr, n)
		switch {
		case t.host != nil:
			return t.host.deliver(f, payload, w, n)
		case t.next != nil:
			dev = t.next
		default:
			n.cUnreachable.Inc()
			return Result{Reason: DropUnreachable, Hops: w.hops}
		}
	}
}
