// Package simnet is a deterministic, packet-level network simulator. It
// models the addressing structures of Figure 2 of the paper: hosts attach
// to nested addressing realms (home LANs inside ISP-internal realms inside
// the public Internet), NAT devices connect a realm to its parent, and
// packets are forwarded hop-by-hop — synchronously, under a virtual clock —
// with TTL decrement, translation, filtering, and hairpinning applied on
// path exactly where a real deployment would apply them.
//
// The synchronous design is deliberate: there are no goroutines in the data
// path, every run is reproducible from a seed, and experiments that need
// hours of idle time (NAT mapping expiry) simply advance the virtual clock.
package simnet

import "time"

// Clock is the simulation's virtual clock. The zero value starts at the
// Unix epoch; all NAT timeout state derives from it.
type Clock struct {
	now time.Time
}

// NewClock returns a clock positioned at the Unix epoch.
func NewClock() *Clock { return &Clock{now: time.Unix(0, 0)} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Advance moves the clock forward by d. It panics on negative d: virtual
// time never runs backwards, and a negative advance is a bug in the caller.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("simnet: clock cannot run backwards")
	}
	c.now = c.now.Add(d)
}
