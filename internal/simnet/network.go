package simnet

import (
	"fmt"
	"math/rand"

	"cgn/internal/metrics"
	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/routing"
)

// DefaultTTL is the initial TTL of packets sent without an explicit TTL,
// matching the common OS default of 64.
const DefaultTTL = 64

// Network is the simulation root: it owns the virtual clock, the public
// realm, the simulated global routing table and all devices.
type Network struct {
	clock  *Clock
	public *Realm
	global *routing.Global
	// lossRate drops packets at each hop with this probability; zero (the
	// default) keeps the network perfectly reliable and fully
	// deterministic.
	lossRate float64
	lossRNG  *rand.Rand
	// Metrics counts forwarding outcomes network-wide.
	Metrics *metrics.Set
	// Counters below are hoisted out of Metrics at construction; the
	// forwarding path increments them per packet and a name lookup per
	// increment is measurable at campaign scale.
	cSent, cUnreachable, cNATDropped, cLost, cTTLExpired *metrics.Counter
	cDelivered, cNoListener                              *metrics.Counter

	// Compiled-path forwarding engine state (see fastpath.go). topoGen
	// increments on every topology mutation; cached routes carry the
	// generation they were compiled under and recompile lazily on
	// mismatch. fastOff forces every packet onto the reference walk.
	topoGen uint64
	routes  map[routeKey]*route
	// seen records every (realm, dst) pair a packet has headed toward;
	// routes are only compiled for pairs seen more than once. The key
	// and value are pointer-free, so the GC never scans this set however
	// large a campaign grows it.
	seen    map[routeKey]struct{}
	fastOff bool
	// realms and devices list every realm and NAT device in creation
	// order, for route precompilation and state digests.
	realms  []*Realm
	devices []*NATDev
}

// New creates an empty network with a public realm.
func New() *Network {
	n := &Network{
		clock:   NewClock(),
		global:  routing.NewGlobal(),
		Metrics: metrics.NewSet(),
		routes:  make(map[routeKey]*route),
		seen:    make(map[routeKey]struct{}),
	}
	n.cSent = n.Metrics.Counter("pkts_sent")
	n.cUnreachable = n.Metrics.Counter("pkts_unreachable")
	n.cNATDropped = n.Metrics.Counter("pkts_nat_dropped")
	n.cLost = n.Metrics.Counter("pkts_lost")
	n.cTTLExpired = n.Metrics.Counter("pkts_ttl_expired")
	n.cDelivered = n.Metrics.Counter("pkts_delivered")
	n.cNoListener = n.Metrics.Counter("pkts_no_listener")
	n.public = &Realm{name: "public", net: n, attach: make(map[netaddr.Addr]attachment), lblFabric: "fabric:public"}
	n.realms = append(n.realms, n.public)
	return n
}

// Clock returns the network's virtual clock.
func (n *Network) Clock() *Clock { return n.clock }

// Public returns the public (top-level) realm.
func (n *Network) Public() *Realm { return n.public }

// Global returns the simulated global routing table. The world generator
// announces allocations into it; the detection pipelines use it to decide
// "routed vs unrouted" per §4.2.
func (n *Network) Global() *routing.Global { return n.global }

// Realms returns every realm in creation order, the public realm first.
func (n *Network) Realms() []*Realm { return n.realms }

// Devices returns every NAT device in attachment order. Differential and
// state-digest tests enumerate NAT state through it.
func (n *Network) Devices() []*NATDev { return n.devices }

// SetFastPath toggles the compiled-path forwarding engine (on by
// default). With it off every packet takes the reference walk; the
// differential tests pin the two paths byte-identical. Loss mode
// (SetLoss) always uses the reference walk regardless, so the per-hop
// Bernoulli draws consume the loss RNG identically.
func (n *Network) SetFastPath(on bool) { n.fastOff = !on }

// FastPathEnabled reports whether the compiled-path engine is active.
func (n *Network) FastPathEnabled() bool { return !n.fastOff }

// SetLoss enables per-hop packet loss with the given probability, drawn
// from a dedicated seeded stream so enabling loss does not perturb any
// other random decision in the simulation. Measurement code must cope —
// the paper's TTL test confirms failures by repetition for this reason.
func (n *Network) SetLoss(rate float64, seed int64) {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("simnet: invalid loss rate %v", rate))
	}
	n.lossRate = rate
	n.lossRNG = rand.New(rand.NewSource(seed))
}

// lose reports whether this hop eats the packet.
func (n *Network) lose() bool {
	return n.lossRate > 0 && n.lossRNG.Float64() < n.lossRate
}

// Realm is one addressing realm: a set of directly mutually-reachable
// addresses (the public Internet, one ISP's internal network, one home
// LAN). A realm optionally has an upstream NAT connecting it to its parent
// realm.
type Realm struct {
	name string
	net  *Network
	// attach maps addresses to what answers for them in this realm.
	attach map[netaddr.Addr]attachment
	// up is the NAT leading towards the parent realm (nil for public).
	up *NATDev
	// fabricHops is the router-hop cost of crossing this realm between two
	// of its attachments (intra-realm peer traffic). Zero for a home LAN.
	fabricHops int
	// hosts lists attached hosts in creation order, for deterministic
	// enumeration by population drivers (e.g. LAN peer discovery).
	hosts []*Host
	// lblFabric is the precomputed fabric trace label ("fabric:<name>"),
	// built once so trace replay never concatenates on path.
	lblFabric string
	// id is the realm's dense creation index, used as the pointer-free
	// half of route-cache keys.
	id uint32
}

// attachment is what an address resolves to inside a realm: a host, or the
// external face of a NAT device one level down.
type attachment interface{ isAttachment() }

// NewRealm creates a child realm (an ISP-internal network or a home LAN).
// fabricHops is the intra-realm router distance between attachments.
func (n *Network) NewRealm(name string, fabricHops int) *Realm {
	r := &Realm{
		name:       name,
		net:        n,
		attach:     make(map[netaddr.Addr]attachment),
		fabricHops: fabricHops,
		lblFabric:  "fabric:" + name,
		id:         uint32(len(n.realms)),
	}
	n.realms = append(n.realms, r)
	return r
}

// Name returns the realm's label.
func (r *Realm) Name() string { return r.name }

// Up returns the realm's upstream NAT device, or nil.
func (r *Realm) Up() *NATDev { return r.up }

// Hosts returns the hosts attached to this realm, in attachment order.
func (r *Realm) Hosts() []*Host { return r.hosts }

// register installs an attachment, refusing address collisions. Every
// registration is a topology mutation, so it advances the route-cache
// generation: compiled paths resolved under the old attachment table
// recompile on next use.
func (r *Realm) register(a netaddr.Addr, att attachment) {
	if a.IsUnspecified() {
		panic(fmt.Sprintf("simnet: realm %s: cannot attach 0.0.0.0", r.name))
	}
	if _, dup := r.attach[a]; dup {
		panic(fmt.Sprintf("simnet: realm %s: address %v already attached", r.name, a))
	}
	r.attach[a] = att
	r.net.topoGen++
}

// NATDev is a NAT middlebox connecting an inner realm to an outer realm.
// Its external pool addresses are attached in the outer realm; packets
// crossing it are translated by the wrapped nat.NAT.
type NATDev struct {
	Name string
	NAT  *nat.NAT
	// inner and outer are the realms on each side.
	inner, outer *Realm
	// innerHops is the number of plain router hops between an inner-realm
	// sender and this NAT (0 for a CPE sitting directly on the LAN; k for
	// a CGN deep in the ISP's aggregation network).
	innerHops int
	// outerHops is the number of plain router hops between this NAT and
	// the outer realm's fabric.
	outerHops int
	// Precomputed trace labels, so neither hot forwarding nor trace
	// replay concatenates strings per hop.
	lblInner, lblOuter, lblNAT, lblHairpin string
	// inTail caches, per translated destination address, the resolved
	// attachment in this device's inner realm — the inbound descend
	// resolution, which varies with the NAT mapping a packet hits.
	// Entries are validated against the network's topology generation.
	inTail map[netaddr.Addr]tail
}

func (d *NATDev) isAttachment() {}

// Inner returns the realm on the subscriber side.
func (d *NATDev) Inner() *Realm { return d.inner }

// Outer returns the realm on the Internet side.
func (d *NATDev) Outer() *Realm { return d.outer }

// InnerHops returns the router distance from inner hosts to this NAT.
func (d *NATDev) InnerHops() int { return d.innerHops }

// AttachNAT creates a NAT device between inner and outer, attaching its
// external pool addresses in the outer realm and setting it as the inner
// realm's upstream. innerHops/outerHops position it on the path (§6.4:
// CPEs sit one hop from the client, CGNs 2–12 hops).
func (n *Network) AttachNAT(name string, inner, outer *Realm, cfg nat.Config, innerHops, outerHops int) *NATDev {
	if inner.up != nil {
		panic(fmt.Sprintf("simnet: realm %s already has an upstream NAT", inner.name))
	}
	cfg.Name = name
	d := &NATDev{
		Name:       name,
		NAT:        nat.New(cfg),
		inner:      inner,
		outer:      outer,
		innerHops:  innerHops,
		outerHops:  outerHops,
		lblInner:   "router:" + name + "-inner",
		lblOuter:   "router:" + name + "-outer",
		lblNAT:     "nat:" + name,
		lblHairpin: "nat:" + name + " (hairpin)",
	}
	for _, ip := range cfg.ExternalIPs {
		outer.register(ip, d)
	}
	inner.up = d
	n.devices = append(n.devices, d)
	// Setting the upstream changes routing for the whole inner subtree
	// even when the pool is empty (no register call above).
	n.topoGen++
	return d
}

// DropReason explains why a packet was not delivered.
type DropReason uint8

// Packet drop reasons.
const (
	Delivered DropReason = iota
	DropTTLExpired
	DropUnreachable
	DropNoPort
	DropNAT  // any nat.Verdict other than Ok; see Result.NATVerdict
	DropLoss // random per-hop loss (SetLoss)
)

// String names the reason.
func (d DropReason) String() string {
	switch d {
	case Delivered:
		return "delivered"
	case DropTTLExpired:
		return "ttl-expired"
	case DropUnreachable:
		return "unreachable"
	case DropNoPort:
		return "no-listener"
	case DropNAT:
		return "nat-drop"
	case DropLoss:
		return "loss"
	default:
		return fmt.Sprintf("DropReason(%d)", d)
	}
}

// Result reports the fate of one packet walk. Measurement code must treat
// anything but Delivered as silence (UDP gives the sender nothing);
// Result exists for tests and debugging.
type Result struct {
	Reason     DropReason
	NATVerdict nat.Verdict
	// Hops counts TTL decrements consumed before delivery or drop.
	Hops int
}

// Delivered reports whether the packet reached a listener.
func (r Result) Delivered() bool { return r.Reason == Delivered }

// walker tracks TTL spend along a forwarding walk.
type walker struct {
	ttl  int
	hops int
	net  *Network
	lost bool
	// trace, when non-nil, records a label per device crossed; traceOnly
	// additionally suppresses handler delivery so diagnostics have no
	// application side effects (NAT state is still touched, as a real
	// probe packet would touch it).
	trace     *[]string
	traceOnly bool
}

func (w *walker) record(label string) {
	if w.trace != nil {
		*w.trace = append(*w.trace, label)
	}
}

// consume spends k router hops; false when the TTL expires or a hop loses
// the packet (w.lost distinguishes the two). The trace label is passed in
// three parts and only concatenated when a trace is being recorded — the
// forwarding hot path would otherwise allocate a string per hop.
func (w *walker) consume(k int, prefix, name, suffix string) bool {
	for i := 0; i < k; i++ {
		w.ttl--
		w.hops++
		if w.trace != nil {
			w.record(prefix + name + suffix)
		}
		if w.ttl <= 0 {
			return false
		}
		if w.net != nil && w.net.lose() {
			w.lost = true
			return false
		}
	}
	return true
}

// consumeNAT spends the NAT's own hop with its name in the trace.
func (w *walker) consumeNAT(name string) bool {
	return w.consume(1, "nat:", name, "")
}

// TracePath walks a probe packet from src toward dst and returns the
// labeled devices it crosses — a diagnostic traceroute with perfect
// visibility. The probe exercises NAT state exactly as a real packet
// would (mappings are created and refreshed) but is never handed to the
// destination's application handler.
func (n *Network) TracePath(src *Host, proto netaddr.Proto, srcPort uint16, dst netaddr.Endpoint) ([]string, Result) {
	var steps []string
	f := netaddr.FlowOf(proto, netaddr.EndpointOf(src.addr, srcPort), dst)
	w := &walker{ttl: DefaultTTL, net: n, trace: &steps, traceOnly: true}
	if !w.consume(src.extraHops, "router:", src.name, "-access") {
		return steps, n.dropTTL(w)
	}
	// Traces replay the compiled route's op program so the label
	// sequence is byte-identical to the reference walk.
	if n.fastOK() {
		if r := n.routeForTrace(src.realm, dst.Addr); r != nil {
			res := n.traceWalk(f, r, w, nil)
			res.Hops = w.hops
			return steps, res
		}
	}
	res := n.walk(src, f, w, nil)
	res.Hops = w.hops
	return steps, res
}

// send forwards one packet from a host. It ascends from the source realm
// through NATs until the destination's realm is found, then descends
// through any NATs fronting the destination.
func (n *Network) send(src *Host, f netaddr.Flow, ttl int, payload []byte) Result {
	n.cSent.Inc()
	w := &walker{ttl: ttl, net: n}
	return n.walk(src, f, w, payload)
}

// walk is the shared forwarding engine behind send and TracePath.
func (n *Network) walk(src *Host, f netaddr.Flow, w *walker, payload []byte) Result {
	realm := src.realm
	for {
		if att, ok := realm.attach[f.Dst.Addr]; ok {
			if !w.consume(realm.fabricHops, "fabric:", realm.name, "") {
				return n.dropTTL(w)
			}
			return n.descend(att, f, w, payload)
		}
		dev := realm.up
		if dev == nil {
			n.cUnreachable.Inc()
			return Result{Reason: DropUnreachable, Hops: w.hops}
		}
		if !w.consume(dev.innerHops, "router:", dev.Name, "-inner") {
			return n.dropTTL(w)
		}
		now := n.clock.Now()
		// NAT state is created/refreshed on receipt, before the TTL check:
		// a packet whose TTL expires *at* a NAT still keeps its mapping
		// alive. The paper's keepalive parameterization (i <= ttlc < j,
		// Fig 10) relies on exactly this behavior.
		if dev.NAT.IsExternal(f.Dst.Addr) {
			// Hairpin: the packet turns around inside this NAT.
			res, v := dev.NAT.Hairpin(f, now)
			if v != nat.Ok {
				n.cNATDropped.Inc()
				return Result{Reason: DropNAT, NATVerdict: v, Hops: w.hops}
			}
			if !w.consume(1, "nat:", dev.Name, " (hairpin)") {
				return n.dropTTL(w)
			}
			if !w.consume(dev.innerHops, "router:", dev.Name, "-inner") {
				return n.dropTTL(w)
			}
			att, ok := realm.attach[res.Flow.Dst.Addr]
			if !ok {
				n.cUnreachable.Inc()
				return Result{Reason: DropUnreachable, Hops: w.hops}
			}
			return n.descend(att, res.Flow, w, payload)
		}
		out, v := dev.NAT.TranslateOut(f, now)
		if v != nat.Ok {
			n.cNATDropped.Inc()
			return Result{Reason: DropNAT, NATVerdict: v, Hops: w.hops}
		}
		f = out
		if !w.consumeNAT(dev.Name) {
			return n.dropTTL(w)
		}
		if !w.consume(dev.outerHops, "router:", dev.Name, "-outer") {
			return n.dropTTL(w)
		}
		realm = dev.outer
	}
}

// descend delivers a packet to an attachment, translating inbound through
// any NAT devices stacked below it (NAT444: CGN then CPE).
func (n *Network) descend(att attachment, f netaddr.Flow, w *walker, payload []byte) Result {
	for {
		switch a := att.(type) {
		case *Host:
			return a.deliver(f, payload, w, n)
		case *NATDev:
			// Mirror the outbound path: the routers on the NAT's outer
			// side come first.
			if !w.consume(a.outerHops, "router:", a.Name, "-outer") {
				return n.dropTTL(w)
			}
			// As on the outbound path, translation (and any inbound state
			// refresh) happens before the TTL check.
			in, v := a.NAT.TranslateIn(f, n.clock.Now())
			if v != nat.Ok {
				n.cNATDropped.Inc()
				return Result{Reason: DropNAT, NATVerdict: v, Hops: w.hops}
			}
			f = in
			if !w.consumeNAT(a.Name) {
				return n.dropTTL(w)
			}
			if !w.consume(a.innerHops, "router:", a.Name, "-inner") {
				return n.dropTTL(w)
			}
			next, ok := a.inner.attach[f.Dst.Addr]
			if !ok {
				n.cUnreachable.Inc()
				return Result{Reason: DropUnreachable, Hops: w.hops}
			}
			att = next
		default:
			panic("simnet: unknown attachment type")
		}
	}
}

// dropTTL reports a walk that died mid-path: to random loss when a hop
// ate the packet, to TTL expiry otherwise.
func (n *Network) dropTTL(w *walker) Result {
	if w.lost {
		n.cLost.Inc()
		return Result{Reason: DropLoss, Hops: w.hops}
	}
	n.cTTLExpired.Inc()
	return Result{Reason: DropTTLExpired, Hops: w.hops}
}
