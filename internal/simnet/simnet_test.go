package simnet

import (
	"math/rand"
	"testing"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
)

func addr(s string) netaddr.Addr   { return netaddr.MustParseAddr(s) }
func ep(s string) netaddr.Endpoint { return netaddr.MustParseEndpoint(s) }
func rng() *rand.Rand              { return rand.New(rand.NewSource(1)) }
func cgnCfg(ips ...string) nat.Config {
	var pool []netaddr.Addr
	for _, s := range ips {
		pool = append(pool, addr(s))
	}
	return nat.Config{
		Type:        nat.FullCone,
		PortAlloc:   nat.Random,
		Pooling:     nat.Paired,
		ExternalIPs: pool,
		UDPTimeout:  60 * time.Second,
		Hairpin:     nat.HairpinPreserveSource,
		Seed:        7,
	}
}

func cpeCfg(ip string) nat.Config {
	return nat.Config{
		Type:        nat.PortRestricted,
		PortAlloc:   nat.Preservation,
		Pooling:     nat.Paired,
		ExternalIPs: []netaddr.Addr{addr(ip)},
		UDPTimeout:  65 * time.Second,
		Hairpin:     nat.HairpinTranslate,
		Seed:        9,
	}
}

// world builds the canonical test topology covering all three Figure 2
// scenarios:
//
//	server  203.0.113.10 (public, 2 extra hops)
//	A: subscriber behind CPE with a public IP (NAT44 at home)
//	B: cellular device behind a CGN only (carrier NAT44)
//	C: subscriber behind CPE + CGN (NAT444)
//	D: second cellular device behind the same CGN as B
type world struct {
	net        *Network
	server     *Host
	a, b, c, d *Host
	cgn        *NATDev
	cpeA       *NATDev
	cpeC       *NATDev
	isp        *Realm
}

func buildWorld(t *testing.T) *world {
	t.Helper()
	w := &world{net: New()}
	r := rng()
	pub := w.net.Public()

	w.server = w.net.NewHost("server", pub, addr("203.0.113.10"), 2, r)

	// Home A: CPE with public WAN IP 198.51.100.1.
	lanA := w.net.NewRealm("lanA", 0)
	w.net.AttachNAT("cpeA", lanA, pub, cpeCfg("198.51.100.1"), 0, 3)
	w.cpeA = lanA.Up()
	w.a = w.net.NewHost("A", lanA, addr("192.168.1.2"), 0, r)

	// ISP with CGN: internal realm 100.64/10, pool of two public IPs,
	// CGN 2 router hops into the ISP (so 3 hops from a bare device).
	w.isp = w.net.NewRealm("isp", 1)
	w.net.AttachNAT("cgn", w.isp, pub, cgnCfg("198.51.100.50", "198.51.100.51"), 2, 1)
	w.cgn = w.isp.Up()
	w.b = w.net.NewHost("B", w.isp, addr("100.64.0.2"), 0, r)
	w.d = w.net.NewHost("D", w.isp, addr("100.64.0.3"), 0, r)

	// Home C behind the same CGN: CPE WAN address is ISP-internal.
	lanC := w.net.NewRealm("lanC", 0)
	w.net.AttachNAT("cpeC", lanC, w.isp, cpeCfg("100.64.0.100"), 0, 0)
	w.cpeC = lanC.Up()
	w.c = w.net.NewHost("C", lanC, addr("192.168.1.2"), 0, r)

	return w
}

// echoOn binds an echo responder on the server.
func echoOn(h *Host, port uint16) *[]netaddr.Endpoint {
	var seen []netaddr.Endpoint
	h.Bind(netaddr.UDP, port, func(from, to netaddr.Endpoint, proto netaddr.Proto, payload []byte) {
		seen = append(seen, from)
		h.Send(proto, to.Port, from, payload)
	})
	return &seen
}

func TestDirectPublicDelivery(t *testing.T) {
	w := buildWorld(t)
	seen := echoOn(w.server, 7)
	client := w.net.NewHost("pubclient", w.net.Public(), addr("203.0.113.99"), 0, rng())
	got := false
	client.Bind(netaddr.UDP, 4000, func(from, _ netaddr.Endpoint, _ netaddr.Proto, _ []byte) {
		got = true
	})
	res := client.Send(netaddr.UDP, 4000, netaddr.EndpointOf(w.server.Addr(), 7), []byte("hi"))
	if !res.Delivered() {
		t.Fatalf("send: %+v", res)
	}
	if !got {
		t.Fatal("echo reply not received")
	}
	if (*seen)[0] != ep("203.0.113.99:4000") {
		t.Errorf("server saw %v", (*seen)[0])
	}
}

func TestNAT44CellularTranslation(t *testing.T) {
	w := buildWorld(t)
	seen := echoOn(w.server, 7)
	res := w.b.Send(netaddr.UDP, 5000, netaddr.EndpointOf(w.server.Addr(), 7), nil)
	if !res.Delivered() {
		t.Fatalf("send: %+v", res)
	}
	src := (*seen)[0]
	if src.Addr != addr("198.51.100.50") && src.Addr != addr("198.51.100.51") {
		t.Errorf("server saw %v, want a CGN pool address", src)
	}
	if netaddr.IsReserved(src.Addr) {
		t.Error("internal address leaked past the CGN")
	}
}

func TestNAT444DoubleTranslation(t *testing.T) {
	w := buildWorld(t)
	seen := echoOn(w.server, 7)
	res := w.c.Send(netaddr.UDP, 5000, netaddr.EndpointOf(w.server.Addr(), 7), nil)
	if !res.Delivered() {
		t.Fatalf("send: %+v", res)
	}
	src := (*seen)[0]
	if src.Addr != addr("198.51.100.50") && src.Addr != addr("198.51.100.51") {
		t.Errorf("server saw %v, want a CGN pool address", src)
	}
	// Both the CPE and CGN hold a mapping now.
	if w.cpeC.NAT.NumMappings() != 1 || w.cgn.NAT.NumMappings() != 1 {
		t.Errorf("mappings: cpe=%d cgn=%d", w.cpeC.NAT.NumMappings(), w.cgn.NAT.NumMappings())
	}
}

func TestReplyPathThroughTwoNATs(t *testing.T) {
	w := buildWorld(t)
	echoOn(w.server, 7)
	var replies int
	w.c.Bind(netaddr.UDP, 5000, func(from, _ netaddr.Endpoint, _ netaddr.Proto, _ []byte) {
		replies++
	})
	w.c.Send(netaddr.UDP, 5000, netaddr.EndpointOf(w.server.Addr(), 7), nil)
	if replies != 1 {
		t.Fatalf("replies = %d, want echo through CGN+CPE", replies)
	}
}

func TestHomeNATPreservesPort(t *testing.T) {
	w := buildWorld(t)
	seen := echoOn(w.server, 7)
	w.a.Send(netaddr.UDP, 41000, netaddr.EndpointOf(w.server.Addr(), 7), nil)
	if (*seen)[0] != ep("198.51.100.1:41000") {
		t.Errorf("server saw %v, want preserved port on CPE WAN IP", (*seen)[0])
	}
}

func TestIntraISPInternalDelivery(t *testing.T) {
	// B sends directly to D's internal address: the packet stays inside
	// the ISP and D sees B's internal source — the connectivity the
	// BitTorrent leak methodology depends on.
	w := buildWorld(t)
	var from netaddr.Endpoint
	w.d.Bind(netaddr.UDP, 6881, func(f, _ netaddr.Endpoint, _ netaddr.Proto, _ []byte) { from = f })
	res := w.b.Send(netaddr.UDP, 6881, netaddr.EndpointOf(w.d.Addr(), 6881), nil)
	if !res.Delivered() {
		t.Fatalf("send: %+v", res)
	}
	if from != ep("100.64.0.2:6881") {
		t.Errorf("D saw %v, want B's internal endpoint", from)
	}
	if w.cgn.NAT.NumMappings() != 0 {
		t.Error("internal traffic must not touch the CGN")
	}
}

func TestInternalAddressUnreachableFromOutside(t *testing.T) {
	w := buildWorld(t)
	res := w.server.Send(netaddr.UDP, 7, ep("100.64.0.2:6881"), nil)
	if res.Reason != DropUnreachable {
		t.Errorf("reason = %v, want DropUnreachable", res.Reason)
	}
}

func TestHairpinPreservesInternalSource(t *testing.T) {
	w := buildWorld(t)
	// D opens a mapping by contacting the server, making it reachable at
	// its CGN external endpoint.
	echoOn(w.server, 7)
	var from netaddr.Endpoint
	w.d.Bind(netaddr.UDP, 6881, func(f, _ netaddr.Endpoint, _ netaddr.Proto, _ []byte) { from = f })
	w.d.Send(netaddr.UDP, 6881, netaddr.EndpointOf(w.server.Addr(), 7), nil)
	dExt := externalOf(t, w, w.d, 6881)
	res := w.b.Send(netaddr.UDP, 7000, dExt, nil)
	if !res.Delivered() {
		t.Fatalf("hairpin send: %+v", res)
	}
	// HairpinPreserveSource: D learns B's internal endpoint.
	if from != ep("100.64.0.2:7000") {
		t.Errorf("D saw %v, want B's internal endpoint via hairpin", from)
	}
}

// externalOf fetches a host's current external endpoint on the CGN for the
// flow to the test server.
func externalOf(t *testing.T, w *world, h *Host, port uint16) netaddr.Endpoint {
	t.Helper()
	f := netaddr.FlowOf(netaddr.UDP,
		netaddr.EndpointOf(h.Addr(), port),
		netaddr.EndpointOf(w.server.Addr(), 7))
	extEP, ok := w.cgn.NAT.ExternalFor(f, w.net.Clock().Now())
	if !ok {
		t.Fatalf("no CGN mapping for %s", h.Name())
	}
	return extEP
}

func TestInboundThroughCGNRequiresMapping(t *testing.T) {
	w := buildWorld(t)
	res := w.server.Send(netaddr.UDP, 7, ep("198.51.100.50:12345"), nil)
	if res.Reason != DropNAT {
		t.Fatalf("reason = %v, want DropNAT", res.Reason)
	}
	if res.NATVerdict != nat.DropNoMapping {
		t.Errorf("verdict = %v, want DropNoMapping", res.NATVerdict)
	}
}

func TestMappingExpiryWithVirtualClock(t *testing.T) {
	w := buildWorld(t)
	echoOn(w.server, 7)
	w.b.Bind(netaddr.UDP, 5000, func(_, _ netaddr.Endpoint, _ netaddr.Proto, _ []byte) {})
	w.b.Send(netaddr.UDP, 5000, netaddr.EndpointOf(w.server.Addr(), 7), nil)
	bExt := externalOf(t, w, w.b, 5000)

	// Before the 60 s CGN timeout the server can reach back.
	w.net.Clock().Advance(50 * time.Second)
	if res := w.server.Send(netaddr.UDP, 7, bExt, nil); !res.Delivered() {
		t.Fatalf("pre-expiry reach-back failed: %+v", res)
	}
	// The inbound packet does not refresh (RefreshOnInbound=false), so 61 s
	// after the original send the mapping is gone.
	w.net.Clock().Advance(11 * time.Second)
	res := w.server.Send(netaddr.UDP, 7, bExt, nil)
	if res.Reason != DropNAT || res.NATVerdict != nat.DropNoMapping {
		t.Errorf("post-expiry result = %+v, want no-mapping drop", res)
	}
}

func TestTTLExpiryPosition(t *testing.T) {
	w := buildWorld(t)
	echoOn(w.server, 7)

	// Path from B: 2 ISP routers, CGN (hop 3), 1 router, public fabric
	// (0 fabric hops configured on public), server extra 2 hops, deliver.
	full := w.b.Send(netaddr.UDP, 5000, netaddr.EndpointOf(w.server.Addr(), 7), nil)
	if !full.Delivered() {
		t.Fatalf("full-TTL send failed: %+v", full)
	}
	pathLen := full.Hops

	// A TTL one short of the path length must die en route.
	res := w.b.SendTTL(netaddr.UDP, 5000, netaddr.EndpointOf(w.server.Addr(), 7), pathLen-1, nil)
	if res.Reason != DropTTLExpired {
		t.Errorf("short TTL = %+v, want ttl-expired", res)
	}
	// TTL exactly 3 reaches the CGN (2 routers + the NAT hop) and creates
	// state but dies right after.
	before := w.cgn.NAT.NumMappings()
	res = w.b.SendTTL(netaddr.UDP, 5001, netaddr.EndpointOf(w.server.Addr(), 7), 3, nil)
	if res.Reason != DropTTLExpired {
		t.Fatalf("ttl-3 send = %+v", res)
	}
	if w.cgn.NAT.NumMappings() != before+1 {
		t.Error("TTL-limited packet should still refresh/create CGN state")
	}
	// TTL 2 dies before the CGN: no new mapping.
	before = w.cgn.NAT.NumMappings()
	w.b.SendTTL(netaddr.UDP, 5002, netaddr.EndpointOf(w.server.Addr(), 7), 2, nil)
	if w.cgn.NAT.NumMappings() != before {
		t.Error("TTL-2 packet must die before the CGN")
	}
}

func TestCGNDistances(t *testing.T) {
	w := buildWorld(t)
	echoOn(w.server, 7)
	// For NAT444 subscriber C: CPE at hop 1, CGN at hop 1(CPE) + 2 + 1 = 4.
	before := w.cgn.NAT.NumMappings()
	res := w.c.SendTTL(netaddr.UDP, 5100, netaddr.EndpointOf(w.server.Addr(), 7), 4, nil)
	if res.Reason != DropTTLExpired {
		t.Fatalf("ttl-4 from C = %+v", res)
	}
	if w.cgn.NAT.NumMappings() != before+1 {
		t.Error("TTL 4 from C should reach the CGN")
	}
	before = w.cgn.NAT.NumMappings()
	w.c.SendTTL(netaddr.UDP, 5101, netaddr.EndpointOf(w.server.Addr(), 7), 3, nil)
	if w.cgn.NAT.NumMappings() != before {
		t.Error("TTL 3 from C must not reach the CGN")
	}
	// The two sends above each created a CPE mapping (ports 5100, 5101).
	if got := w.cpeC.NAT.NumMappings(); got != 2 {
		t.Fatalf("cpeC mappings = %d, want 2", got)
	}
	// A TTL-1 packet dies AT the CPE but still creates state there: the
	// NAT processes the packet on receipt before the TTL check.
	res = w.c.SendTTL(netaddr.UDP, 5102, netaddr.EndpointOf(w.server.Addr(), 7), 1, nil)
	if res.Reason != DropTTLExpired {
		t.Fatalf("ttl-1 from C = %+v", res)
	}
	if got := w.cpeC.NAT.NumMappings(); got != 3 {
		t.Errorf("TTL-1 packet should still create CPE state, mappings = %d", got)
	}
}

func TestNoListenerDrop(t *testing.T) {
	w := buildWorld(t)
	res := w.b.Send(netaddr.UDP, 5000, netaddr.EndpointOf(w.server.Addr(), 9999), nil)
	if res.Reason != DropNoPort {
		t.Errorf("reason = %v, want DropNoPort", res.Reason)
	}
}

func TestEphemeralPortsSequentialInRange(t *testing.T) {
	w := buildWorld(t)
	p1 := w.a.EphemeralPort()
	p2 := w.a.EphemeralPort()
	if p1 < EphemeralLo || p1 > EphemeralHi {
		t.Errorf("ephemeral port %d out of range", p1)
	}
	if p2 != p1+1 && !(p1 == EphemeralHi && p2 == EphemeralLo) {
		t.Errorf("ports not sequential: %d then %d", p1, p2)
	}
}

func TestSocketRoundTrip(t *testing.T) {
	w := buildWorld(t)
	srv := w.server.Open(netaddr.UDP, 3478)
	srv.OnRecv(func(from netaddr.Endpoint, payload []byte) {
		srv.Send(from, append([]byte("re:"), payload...))
	})
	cli := w.b.Open(netaddr.UDP, 0)
	var got []byte
	cli.OnRecv(func(_ netaddr.Endpoint, payload []byte) { got = payload })
	res := cli.Send(netaddr.EndpointOf(w.server.Addr(), 3478), []byte("x"))
	if !res.Delivered() {
		t.Fatalf("send: %+v", res)
	}
	if string(got) != "re:x" {
		t.Errorf("reply = %q", got)
	}
	cli.Close()
	if res := srv.Send(cli.LocalEndpoint(), nil); res.Delivered() {
		t.Error("send to closed socket should not deliver")
	}
}

func TestBindCollisionPanics(t *testing.T) {
	w := buildWorld(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate bind should panic")
		}
	}()
	w.server.Bind(netaddr.UDP, 7, nil)
	w.server.Bind(netaddr.UDP, 7, nil)
}

func TestAddressCollisionPanics(t *testing.T) {
	w := buildWorld(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate attach should panic")
		}
	}()
	w.net.NewHost("dup", w.net.Public(), w.server.Addr(), 0, rng())
}

func TestSecondUpstreamPanics(t *testing.T) {
	w := buildWorld(t)
	defer func() {
		if recover() == nil {
			t.Error("second upstream NAT should panic")
		}
	}()
	w.net.AttachNAT("cgn2", w.isp, w.net.Public(), cgnCfg("198.51.100.60"), 0, 0)
}

func TestClockAdvancePanicsOnNegative(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Error("negative advance should panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestLanPeersSeeEachOther(t *testing.T) {
	w := buildWorld(t)
	r := rng()
	a2 := w.net.NewHost("A2", w.a.Realm(), addr("192.168.1.3"), 0, r)
	var from netaddr.Endpoint
	a2.Bind(netaddr.UDP, 6881, func(f, _ netaddr.Endpoint, _ netaddr.Proto, _ []byte) { from = f })
	res := w.a.Send(netaddr.UDP, 6881, netaddr.EndpointOf(a2.Addr(), 6881), nil)
	if !res.Delivered() {
		t.Fatalf("LAN send: %+v", res)
	}
	if from != ep("192.168.1.2:6881") {
		t.Errorf("LAN peer saw %v", from)
	}
	if hosts := w.a.Realm().Hosts(); len(hosts) != 2 {
		t.Errorf("realm hosts = %d", len(hosts))
	}
}

func TestDropReasonStrings(t *testing.T) {
	for _, d := range []DropReason{Delivered, DropTTLExpired, DropUnreachable, DropNoPort, DropNAT, DropLoss} {
		if d.String() == "" {
			t.Error("DropReason must render")
		}
	}
}

func TestTracePathNAT444(t *testing.T) {
	w := buildWorld(t)
	echoOn(w.server, 7)
	steps, res := w.net.TracePath(w.c, netaddr.UDP, 6000, netaddr.EndpointOf(w.server.Addr(), 7))
	if !res.Delivered() {
		t.Fatalf("trace result: %+v", res)
	}
	want := []string{
		"nat:cpeC",
		"router:cgn-inner", "router:cgn-inner",
		"nat:cgn",
		"router:cgn-outer",
		"router:server-access", "router:server-access",
		"host:server",
	}
	if len(steps) != len(want) {
		t.Fatalf("trace = %v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("step %d = %q, want %q", i, steps[i], want[i])
		}
	}
	if res.Hops != 7 {
		t.Errorf("hops = %d, want 7", res.Hops)
	}
}

func TestTracePathDoesNotDeliverPayload(t *testing.T) {
	w := buildWorld(t)
	delivered := false
	w.server.Bind(netaddr.UDP, 7, func(_, _ netaddr.Endpoint, _ netaddr.Proto, _ []byte) {
		delivered = true
	})
	w.net.TracePath(w.b, netaddr.UDP, 6001, netaddr.EndpointOf(w.server.Addr(), 7))
	if delivered {
		t.Error("trace probe reached the application handler")
	}
	// But NAT state was exercised, as documented.
	if w.cgn.NAT.NumMappings() == 0 {
		t.Error("trace probe should create NAT state like a real packet")
	}
}

func TestTracePathUnreachable(t *testing.T) {
	w := buildWorld(t)
	steps, res := w.net.TracePath(w.server, netaddr.UDP, 7, ep("100.64.0.2:6881"))
	if res.Reason != DropUnreachable {
		t.Errorf("reason = %v", res.Reason)
	}
	if len(steps) != 2 { // the server's two access routers
		t.Errorf("steps = %v", steps)
	}
}

func TestPacketLoss(t *testing.T) {
	w := buildWorld(t)
	echoOn(w.server, 7)
	w.net.SetLoss(0.3, 42)
	delivered, lost := 0, 0
	for i := 0; i < 500; i++ {
		res := w.b.Send(netaddr.UDP, uint16(10000+i), netaddr.EndpointOf(w.server.Addr(), 7), nil)
		switch res.Reason {
		case Delivered:
			delivered++
		case DropLoss:
			lost++
		default:
			t.Fatalf("unexpected drop: %+v", res)
		}
	}
	if lost == 0 || delivered == 0 {
		t.Fatalf("loss not stochastic: %d delivered, %d lost", delivered, lost)
	}
	// Path B->server crosses ~6 hops; with 30% per-hop loss the delivery
	// probability is (0.7)^6 ~ 12%. Allow a broad band.
	frac := float64(delivered) / 500
	if frac < 0.03 || frac > 0.35 {
		t.Errorf("delivery fraction = %.2f, outside plausible band", frac)
	}
	if w.net.Metrics.Counter("pkts_lost").Value() == 0 {
		t.Error("loss metric not counted")
	}
}

func TestSetLossValidation(t *testing.T) {
	w := buildWorld(t)
	defer func() {
		if recover() == nil {
			t.Error("invalid loss rate should panic")
		}
	}()
	w.net.SetLoss(1.5, 1)
}

func TestZeroLossIsDeterministic(t *testing.T) {
	// The default network never consults the loss stream.
	w := buildWorld(t)
	echoOn(w.server, 7)
	for i := 0; i < 50; i++ {
		res := w.b.Send(netaddr.UDP, uint16(20000+i), netaddr.EndpointOf(w.server.Addr(), 7), nil)
		if !res.Delivered() {
			t.Fatalf("loss-free network dropped a packet: %+v", res)
		}
	}
}
