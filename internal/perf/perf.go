// Package perf defines the repository's hot-path micro-benchmarks as
// plain functions over *testing.B. The same bodies back both the `go
// test -bench` entry points (bench_test.go at the repository root) and
// cmd/benchjson, which runs them via testing.Benchmark and emits the
// machine-readable BENCH_<n>.json trajectory. Keeping one set of bodies
// means the JSON baseline and the CI bench job can never measure
// different code.
package perf

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"cgn/internal/bencode"
	"cgn/internal/internet"
	"cgn/internal/krpc"
	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/routing"
	"cgn/internal/simnet"
	"cgn/internal/stun"
	"cgn/internal/traffic"
)

// Bench names one registered hot-path benchmark.
type Bench struct {
	Name string
	F    func(*testing.B)
	// Workers and Shards record the concurrency shape a parallel
	// benchmark runs at — realm worker-pool size and NAT shards per
	// realm — so trajectory files carry the knobs a number was measured
	// under. Zero means the benchmark has no such axis (single-threaded
	// bodies) or runs the legacy unsharded engine.
	Workers int
	Shards  int
	// Procs is the GOMAXPROCS the benchmark pins for its own duration
	// (zero = inherit the process value). Multicore variants set it so a
	// trajectory file records which entries measured parallel speedup
	// rather than the host's default parallelism.
	Procs int
}

// All returns the registered hot-path benchmarks in report order.
func All() []Bench {
	procs := runtime.GOMAXPROCS(0)
	return []Bench{
		{Name: "ForwardSteady/fast", F: ForwardSteadyFast},
		{Name: "ForwardSteady/slow", F: ForwardSteadySlow},
		{Name: "SimnetNAT444Walk", F: SimnetNAT444Walk},
		{Name: "NATTranslateOut", F: NATTranslateOut},
		{Name: "NATTranslateIn", F: NATTranslateIn},
		{Name: "NATPortChurn", F: NATPortChurn},
		{Name: "TrafficWeek", F: TrafficWeek, Workers: 4},
		{Name: "TrafficMetro", F: TrafficMetro, Workers: procs},
		{Name: "TrafficMetroSharded", F: TrafficMetroSharded, Workers: procs, Shards: procs},
		{Name: "TrafficMetroSharded/mp4", F: TrafficMetroShardedMP4, Workers: 4, Shards: 4, Procs: 4},
		{Name: "BencodeDecode", F: BencodeDecode},
		{Name: "KRPCParseFindNodeResponse", F: KRPCParseFindNodeResponse},
		{Name: "STUNParse", F: STUNParse},
		{Name: "LPMLookup", F: LPMLookup},
	}
}

// ForwardSteadyFast measures steady-state packet forwarding over a built
// Small world on the compiled-path engine: repeated sends from a rotating
// set of subscribers (bare CGN, NAT444 home devices, a public host)
// toward a public sink, every route and NAT mapping warm. The cached path
// must not allocate.
func ForwardSteadyFast(b *testing.B) { forwardSteady(b, true) }

// ForwardSteadySlow is the same workload on the reference walk — the
// pre-compiled-path forwarding engine kept as the slow path. The ratio
// between the two is the engine's speedup.
func ForwardSteadySlow(b *testing.B) { forwardSteady(b, false) }

func forwardSteady(b *testing.B, fast bool) {
	w := internet.Build(internet.Small())
	w.Net.SetFastPath(fast)
	rng := rand.New(rand.NewSource(99))
	sink := w.Net.NewHost("bench-sink", w.Net.Public(), netaddr.MustParseAddr("203.0.113.200"), 1, rng)
	sink.Bind(netaddr.UDP, 7, func(netaddr.Endpoint, netaddr.Endpoint, netaddr.Proto, []byte) {})
	dst := netaddr.EndpointOf(sink.Addr(), 7)

	// Senders picked structurally for a forwarding-heavy mix: bare
	// subscribers inside carrier realms (the CGN sits several router hops
	// out, so these paths are long) and NAT444 home devices (two
	// translations on path). Plain one-hop NAT44 homes are deliberately
	// excluded — they barely forward.
	var senders []*simnet.Host
	bare, nat444 := 0, 0
	for _, r := range w.Net.Realms() {
		up := r.Up()
		if up == nil || len(r.Hosts()) == 0 {
			continue
		}
		hs := r.Hosts()
		switch {
		case up.Outer().Up() == nil && up.InnerHops() > 0 && bare < 8:
			// A realm whose NAT sits deep on the path is a carrier realm;
			// its directly attached hosts are bare subscribers.
			senders = append(senders, hs[0])
			bare++
		case up.Outer().Up() != nil && nat444 < 8:
			senders = append(senders, hs[len(hs)-1])
			nat444++
		}
	}
	if len(senders) == 0 {
		b.Fatal("no forwarding-heavy senders found in the Small world")
	}
	// Warm every route and NAT mapping; the loop below measures the
	// steady state only. Two packets per sender: the engine defers route
	// compilation to the second packet of a (realm, dst) pair.
	for _, h := range senders {
		for i := 0; i < 2; i++ {
			if res := h.Send(netaddr.UDP, 40000, dst, nil); !res.Delivered() {
				b.Fatalf("warmup send from %s: %+v", h.Name(), res)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := senders[i%len(senders)]
		if res := h.Send(netaddr.UDP, 40000, dst, nil); !res.Delivered() {
			b.Fatal(res)
		}
	}
}

// SimnetNAT444Walk measures one NAT444 delivery (CPE + CGN on path) on a
// minimal hand-built topology.
func SimnetNAT444Walk(b *testing.B) {
	net := simnet.New()
	rng := rand.New(rand.NewSource(1))
	server := net.NewHost("server", net.Public(), netaddr.MustParseAddr("203.0.113.10"), 2, rng)
	server.Bind(netaddr.UDP, 7, func(_, _ netaddr.Endpoint, _ netaddr.Proto, _ []byte) {})
	isp := net.NewRealm("isp", 1)
	net.AttachNAT("cgn", isp, net.Public(), nat.Config{
		Type: nat.PortRestricted, PortAlloc: nat.Random, Pooling: nat.Paired,
		ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.1")},
		Seed:        1,
	}, 2, 1)
	lan := net.NewRealm("lan", 0)
	net.AttachNAT("cpe", lan, isp, nat.Config{
		Type: nat.PortRestricted, PortAlloc: nat.Preservation, Pooling: nat.Paired,
		ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("10.0.0.2")},
		Seed:        2,
	}, 0, 0)
	dev := net.NewHost("dev", lan, netaddr.MustParseAddr("192.168.1.2"), 0, rng)
	dst := netaddr.EndpointOf(server.Addr(), 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := dev.Send(netaddr.UDP, 4000, dst, nil); !res.Delivered() {
			b.Fatal(res)
		}
	}
}

// NATTranslateOut measures the outbound translation hot path (mapping
// exists, no allocation).
func NATTranslateOut(b *testing.B) {
	n := nat.New(nat.Config{
		Type:        nat.PortRestricted,
		PortAlloc:   nat.Random,
		Pooling:     nat.Paired,
		ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.1")},
		Seed:        1,
	})
	now := time.Unix(0, 0)
	src := netaddr.MustParseEndpoint("100.64.0.5:4000")
	dst := netaddr.MustParseEndpoint("8.8.8.8:53")
	f := netaddr.FlowOf(netaddr.UDP, src, dst)
	n.TranslateOut(f, now) // create once; the loop measures the hot path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, v := n.TranslateOut(f, now); v != nat.Ok {
			b.Fatal(v)
		}
	}
}

// NATTranslateIn measures the inbound translation hot path.
func NATTranslateIn(b *testing.B) {
	n := nat.New(nat.Config{
		Type:        nat.FullCone,
		PortAlloc:   nat.Random,
		Pooling:     nat.Paired,
		ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.1")},
		Seed:        1,
	})
	now := time.Unix(0, 0)
	src := netaddr.MustParseEndpoint("100.64.0.5:4000")
	dst := netaddr.MustParseEndpoint("8.8.8.8:53")
	out, _ := n.TranslateOut(netaddr.FlowOf(netaddr.UDP, src, dst), now)
	in := netaddr.FlowOf(netaddr.UDP, dst, out.Src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, v := n.TranslateIn(in, now); v != nat.Ok {
			b.Fatal(v)
		}
	}
}

// NATPortChurn measures the port-resource engine under the mobile-churn
// regime: every iteration creates a fresh mapping (sequential allocation
// against a bitmap that stays ~75% full) while virtual time advances and
// periodic Sweeps expire old mappings off the deadline heap. Steady
// state holds ~30k live mappings.
func NATPortChurn(b *testing.B) {
	n := nat.New(nat.Config{
		Type:        nat.Symmetric,
		PortAlloc:   nat.Sequential,
		Pooling:     nat.Paired,
		ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.1")},
		UDPTimeout:  30 * time.Second,
		Seed:        1,
	})
	now := time.Unix(0, 0)
	src := netaddr.MustParseEndpoint("100.64.0.5:4000")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := netaddr.EndpointOf(netaddr.Addr(uint32(0x08000000)+uint32(i)), 53)
		if _, v := n.TranslateOut(netaddr.FlowOf(netaddr.UDP, src, dst), now); v != nat.Ok {
			b.Fatal(v)
		}
		now = now.Add(time.Millisecond)
		if i&1023 == 1023 {
			n.Sweep(now)
		}
	}
}

// TrafficWeek measures the traffic engine driving one simulated week of
// diurnal subscriber flow churn — arrivals, per-tick mapping-handle
// refreshes, expiry sweeps and per-subscriber sampling — through four
// carrier-NAT realms of 64 subscribers each, on a four-worker realm
// pool (one worker per realm; the engine's determinism contract makes
// the result byte-identical to a sequential run). One iteration is one
// full week, so ns/op is the engine's whole-run cost at diurnal-week
// scale.
func TrafficWeek(b *testing.B) {
	realms := make([]traffic.RealmSpec, 4)
	for i := range realms {
		realms[i] = traffic.RealmSpec{
			ID:       "bench",
			Cellular: i%2 == 1,
			NAT: nat.Config{
				Type:        nat.Symmetric,
				PortAlloc:   nat.Random,
				Pooling:     nat.Paired,
				ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.1") + netaddr.Addr(i)},
				UDPTimeout:  65 * time.Second,
				Seed:        int64(i + 1),
			},
			Subscribers: 64,
		}
	}
	cfg := traffic.Config{
		Seed: 7,
		Profile: traffic.Profile{
			Ticks:         7 * 288,
			DayTicks:      288,
			DiurnalAmp:    0.7,
			HeavyFrac:     0.06,
			LightFrac:     0.50,
			FlowsPerTick:  0.8,
			HeavyMult:     12,
			FlowHoldTicks: 4,
		},
		Workers: 4,
		Realms:  realms,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := traffic.Run(cfg)
		if res.All.Max == 0 {
			b.Fatal("traffic run produced no load")
		}
	}
}

// TrafficMetro measures the engine at ISP scale: a million-subscriber
// metro — 16 carrier realms of 65,536 subscribers each, four external
// IPs per realm — driven through one simulated day of diurnal churn on
// a GOMAXPROCS-wide realm pool. One iteration is the full day
// (~100 million subscriber-tick samples plus tens of millions of
// mapping events), so ns/op is the whole-run wall clock the ROADMAP's
// "millions of users" target is measured by.
func TrafficMetro(b *testing.B) { trafficMetro(b, 0) }

// TrafficMetroSharded is the same metro day on the intra-realm sharded
// NAT engine: each realm's four external IPs become four lanes split
// across GOMAXPROCS shards (clamped to 4), on top of the realm worker
// pool. Against TrafficMetro this measures what the lane partition buys
// — per-lane table locality single-core, a second parallelism axis when
// cores outnumber realms.
func TrafficMetroSharded(b *testing.B) { trafficMetro(b, runtime.GOMAXPROCS(0)) }

// TrafficMetroShardedMP4 is the sharded metro day pinned to
// GOMAXPROCS=4 with four workers × four shards — the multicore point of
// the trajectory. Since the single-phase tick loop removed the serial
// driver phase, per-tick work is lane-confined end to end, so this
// variant is what the persistent-worker barrier actually buys on a
// multicore host; on fewer physical cores it degrades to the 1-core
// number (the pinned GOMAXPROCS only caps, it cannot mint cores — read
// it next to the host's core count).
func TrafficMetroShardedMP4(b *testing.B) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	trafficMetro(b, 4)
}

func trafficMetro(b *testing.B, shards int) {
	const (
		metroRealms      = 16
		metroSubs        = 65536 // 16 realms × 65,536 = 1,048,576 subscribers
		metroIPsPerRealm = 4
	)
	realms := make([]traffic.RealmSpec, metroRealms)
	for i := range realms {
		ips := make([]netaddr.Addr, metroIPsPerRealm)
		for k := range ips {
			ips[k] = netaddr.MustParseAddr("198.51.100.1") + netaddr.Addr(metroIPsPerRealm*i+k)
		}
		realms[i] = traffic.RealmSpec{
			ID:       "metro",
			Cellular: i%2 == 1,
			NAT: nat.Config{
				Type:        nat.Symmetric,
				PortAlloc:   nat.Random,
				Pooling:     nat.Paired,
				ExternalIPs: ips,
				UDPTimeout:  65 * time.Second,
				Seed:        int64(i + 1),
			},
			Subscribers: metroSubs,
		}
	}
	cfg := traffic.Config{
		Seed: 7,
		Profile: traffic.Profile{
			Ticks:         96,
			DayTicks:      96,
			DiurnalAmp:    0.7,
			HeavyFrac:     0.02,
			LightFrac:     0.60,
			FlowsPerTick:  0.25,
			HeavyMult:     8,
			FlowHoldTicks: 2,
		},
		Workers: runtime.GOMAXPROCS(0),
		Shards:  shards,
		Realms:  realms,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := traffic.Run(cfg)
		if res.All.Max == 0 {
			b.Fatal("traffic run produced no load")
		}
	}
}

// BencodeDecode measures decoding a find_node response.
func BencodeDecode(b *testing.B) {
	var id krpc.NodeID
	nodes := make([]krpc.NodeInfo, 8)
	wire := krpc.EncodeFindNodeResponse([]byte("aa"), id, nodes)
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bencode.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// KRPCParseFindNodeResponse measures the full KRPC parse of a find_node
// response carrying eight contacts.
func KRPCParseFindNodeResponse(b *testing.B) {
	var id krpc.NodeID
	rng := rand.New(rand.NewSource(1))
	nodes := make([]krpc.NodeInfo, 8)
	for i := range nodes {
		rng.Read(nodes[i].ID[:])
		nodes[i].EP = netaddr.EndpointOf(netaddr.Addr(rng.Uint32()), 6881)
	}
	wire := krpc.EncodeFindNodeResponse([]byte("aa"), id, nodes)
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := krpc.Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// STUNParse measures parsing a binding response.
func STUNParse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := &stun.Message{
		Type:    stun.TypeBindingResponse,
		TID:     stun.NewTID(rng),
		Mapped:  netaddr.MustParseEndpoint("203.0.113.9:54321"),
		Changed: netaddr.MustParseEndpoint("203.0.113.2:3479"),
	}
	wire := stun.Encode(m)
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stun.Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// LPMLookup measures longest-prefix-match lookups against a 5k-entry
// table.
func LPMLookup(b *testing.B) {
	t := routing.NewTable[int]()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		t.Insert(netaddr.PrefixFrom(netaddr.Addr(rng.Uint32()), 8+rng.Intn(17)), i)
	}
	addrs := make([]netaddr.Addr, 1024)
	for i := range addrs {
		addrs[i] = netaddr.Addr(rng.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(addrs[i&1023])
	}
}
