package crawler

import (
	"math/rand"
	"testing"

	"cgn/internal/dht"
	"cgn/internal/krpc"
	"cgn/internal/netaddr"
	"cgn/internal/routing"
	"cgn/internal/simnet"
)

func addr(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

func nid(b byte) krpc.NodeID {
	var out krpc.NodeID
	for i := range out {
		out[i] = b
	}
	return out
}

type sockSender struct{ sock *simnet.Socket }

func (s sockSender) Send(dst netaddr.Endpoint, payload []byte) { s.sock.Send(dst, payload) }

// lab wires a public-only world: N reachable DHT nodes plus a crawler.
type lab struct {
	net    *simnet.Network
	global *routing.Global
	nodes  []*dht.Node
	cr     *Crawler
}

func buildLab(t *testing.T, n int) *lab {
	t.Helper()
	l := &lab{net: simnet.New()}
	l.global = l.net.Global()
	l.global.Announce(netaddr.MustParsePrefix("198.51.0.0/16"), 65001)
	rng := rand.New(rand.NewSource(4))

	for i := 0; i < n; i++ {
		host := l.net.NewHost("peer", l.net.Public(), addr("198.51.0.10")+netaddr.Addr(i), 0, rng)
		sock := host.Open(netaddr.UDP, 6881)
		node := dht.NewNode(dht.Config{ID: nid(byte(i + 1)), Validate: true, Seed: int64(i)}, sockSender{sock})
		sock.OnRecv(node.HandlePacket)
		l.nodes = append(l.nodes, node)
	}
	// Chain the nodes: each knows the next, so the crawl can expand from
	// a single seed.
	for i := 0; i+1 < n; i++ {
		l.nodes[i].AddCandidate(netaddr.EndpointOf(addr("198.51.0.10")+netaddr.Addr(i+1), 6881))
	}

	crawlHost := l.net.NewHost("crawler", l.net.Public(), addr("203.0.113.9"), 0, rng)
	l.cr = New(crawlHost, l.global, Config{
		QueriesPerPeer: 5, LeakBatch: 10, MaxPeers: 1000, PingLearned: true, Seed: 5,
	})
	return l
}

func TestCrawlExpandsFromSeed(t *testing.T) {
	l := buildLab(t, 6)
	l.cr.Seed(netaddr.EndpointOf(addr("198.51.0.10"), 6881))
	ds := l.cr.Run()
	if len(ds.Queried) < 4 {
		t.Errorf("queried %d peers, want the chain to unfold", len(ds.Queried))
	}
	for key := range ds.Queried {
		if ds.QueriedASN[key] != 65001 {
			t.Errorf("peer %v stamped AS%d, want 65001", key.EP, ds.QueriedASN[key])
		}
	}
	if ds.ASes() != 1 {
		t.Errorf("ASes = %d", ds.ASes())
	}
	if len(ds.PingResponded) == 0 {
		t.Error("no bt_ping responses recorded")
	}
}

func TestLeakEscalation(t *testing.T) {
	l := buildLab(t, 2)
	// Node 0 carries internal contacts it "validated" out of band.
	for i := 0; i < 6; i++ {
		l.nodes[0].InsertContact(krpc.NodeInfo{
			ID: nid(byte(0x40 + i)),
			EP: netaddr.EndpointOf(addr("10.9.0.1")+netaddr.Addr(i), 6881),
		})
	}
	l.cr.Seed(netaddr.EndpointOf(addr("198.51.0.10"), 6881))
	ds := l.cr.Run()
	if len(ds.Leaks) == 0 {
		t.Fatal("no leaks harvested")
	}
	// Escalation: the leaking peer must have been asked more than the
	// base five queries.
	if got := l.cr.Metrics.Counter("internal_peers_seen").Value(); got < 6 {
		t.Errorf("internal peers seen = %d, want all 6 (escalation)", got)
	}
	seen := map[netaddr.Addr]bool{}
	for _, lk := range ds.Leaks {
		if lk.LeakerASN != 65001 {
			t.Errorf("leak stamped AS%d", lk.LeakerASN)
		}
		seen[lk.Internal.EP.Addr] = true
	}
	if len(seen) != 6 {
		t.Errorf("distinct internal IPs = %d, want 6", len(seen))
	}
}

func TestInternalPeersNotCrawled(t *testing.T) {
	l := buildLab(t, 2)
	l.nodes[0].InsertContact(krpc.NodeInfo{ID: nid(0x70), EP: netaddr.MustParseEndpoint("10.0.0.1:6881")})
	l.cr.Seed(netaddr.EndpointOf(addr("198.51.0.10"), 6881))
	l.cr.Run()
	// The frontier must never contain reserved addresses.
	for ep := range l.cr.queued {
		if netaddr.IsReserved(ep.Addr) {
			t.Errorf("reserved endpoint %v queued for crawling", ep)
		}
	}
}

func TestInboundQueryJoinsFrontier(t *testing.T) {
	l := buildLab(t, 3)
	// A peer contacts the crawler first (as NATed peers do once they
	// learn of it); the crawler must enqueue and later crawl it.
	l.nodes[2].Ping(l.cr.Endpoint())
	ds := l.cr.Run() // no explicit seed: the inbound source is the seed
	if len(ds.Queried) == 0 {
		t.Fatal("crawler did not crawl the inbound peer")
	}
	if l.cr.Metrics.Counter("inbound_queries").Value() == 0 {
		t.Error("inbound query not counted")
	}
}

func TestMaxPeersBudget(t *testing.T) {
	l := buildLab(t, 6)
	l.cr.cfg.MaxPeers = 2
	l.cr.Seed(netaddr.EndpointOf(addr("198.51.0.10"), 6881))
	ds := l.cr.Run()
	if len(ds.Queried) > 2 {
		t.Errorf("queried %d peers, budget was 2", len(ds.Queried))
	}
}

func TestUnansweredPeerNotCounted(t *testing.T) {
	l := buildLab(t, 1)
	l.cr.Seed(netaddr.MustParseEndpoint("198.51.0.99:6881")) // nobody there
	ds := l.cr.Run()
	if len(ds.Queried) != 0 {
		t.Errorf("queried = %d, want 0 for unanswered endpoint", len(ds.Queried))
	}
}

func TestUniqueIPsHelper(t *testing.T) {
	set := map[PeerKey]bool{
		{EP: netaddr.MustParseEndpoint("1.1.1.1:1"), ID: nid(1)}: true,
		{EP: netaddr.MustParseEndpoint("1.1.1.1:2"), ID: nid(2)}: true,
		{EP: netaddr.MustParseEndpoint("2.2.2.2:1"), ID: nid(3)}: true,
	}
	if got := UniqueIPs(set); got != 2 {
		t.Errorf("UniqueIPs = %d, want 2", got)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.QueriesPerPeer != 5 || cfg.LeakBatch != 10 {
		t.Errorf("defaults = %+v, want the paper's 5/10 schedule", cfg)
	}
}
