// Package crawler implements the paper's BitTorrent DHT crawler (§4.1):
// it walks the DHT issuing find_node queries with random targets, records
// every contact learned, validates contacts with bt_ping, and — the core
// of the methodology — harvests "internal peers": contacts propagated with
// reserved (RFC 1918 / RFC 6598) addresses, which only make sense for
// peers that validated each other across a private network behind a NAT.
//
// Per the paper: five find_node queries are issued per peer; when a peer
// leaks internal contacts, the crawler escalates in batches of ten queries
// for as long as new internal peers keep coming. Peers are identified by
// the full (IP:port, nodeid) tuple, which also neutralizes DHT poisoning.
package crawler

import (
	"math/rand"
	"time"

	"cgn/internal/krpc"
	"cgn/internal/metrics"
	"cgn/internal/netaddr"
	"cgn/internal/routing"
	"cgn/internal/simnet"
)

// Transport is the crawler's network access. Two implementations exist:
// the simulated one (SimTransport, synchronous — responses arrive during
// Send) and a real-UDP one in cmd/dhtcrawl for live crawls.
type Transport interface {
	// Send transmits one datagram, best effort.
	Send(dst netaddr.Endpoint, payload []byte)
	// Endpoint is the local endpoint peers can reach the crawler at.
	Endpoint() netaddr.Endpoint
	// Poll delivers inbound datagrams to fn until wait elapses or the
	// transport decides it has drained. The simulated transport delivers
	// synchronously through its receive callback instead, so its Poll
	// returns immediately.
	Poll(fn func(from netaddr.Endpoint, data []byte), wait time.Duration)
}

// simTransport adapts a simnet socket.
type simTransport struct {
	sock *simnet.Socket
}

// SimTransport opens the crawler's DHT socket on a simulated host.
// onRecv must be installed by the crawler before use; New does this.
func SimTransport(host *simnet.Host) Transport {
	return &simTransport{sock: host.Open(netaddr.UDP, 6881)}
}

func (s *simTransport) Send(dst netaddr.Endpoint, payload []byte) { s.sock.Send(dst, payload) }
func (s *simTransport) Endpoint() netaddr.Endpoint                { return s.sock.LocalEndpoint() }
func (s *simTransport) Poll(func(netaddr.Endpoint, []byte), time.Duration) {
	// Synchronous network: anything that will ever arrive has already
	// been delivered through the socket callback.
}

// PeerKey is the paper's peer identity: endpoint plus node ID.
type PeerKey struct {
	EP netaddr.Endpoint
	ID krpc.NodeID
}

// LeakRecord states that a publicly-queried peer propagated contact
// information for a peer with a reserved address.
type LeakRecord struct {
	// Leaker is the queried peer (by its public endpoint).
	Leaker PeerKey
	// LeakerASN is the AS the leaker's address originates from.
	LeakerASN uint32
	// Internal is the leaked reserved-address contact.
	Internal PeerKey
}

// Dataset accumulates a crawl's observations (Tables 2 and 3).
type Dataset struct {
	// Queried holds peers that were sent find_node queries and replied.
	Queried map[PeerKey]bool
	// QueriedASN maps each queried peer to the AS its address originates
	// from (resolved against the routing table at query time).
	QueriedASN map[PeerKey]uint32
	// Learned holds every contact gathered from responses.
	Learned map[PeerKey]bool
	// PingResponded holds learned peers that answered a bt_ping.
	PingResponded map[PeerKey]bool
	// Leaks lists all internal-peer propagation events.
	Leaks []LeakRecord
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{
		Queried:       make(map[PeerKey]bool),
		QueriedASN:    make(map[PeerKey]uint32),
		Learned:       make(map[PeerKey]bool),
		PingResponded: make(map[PeerKey]bool),
	}
}

// ASes counts distinct origin ASes across the queried or learned sets,
// resolved against the global table the crawler was built with.
func (ds *Dataset) ASes() int {
	ases := make(map[uint32]bool)
	for _, asn := range ds.QueriedASN {
		ases[asn] = true
	}
	return len(ases)
}

// UniqueIPs counts distinct addresses in a peer set.
func UniqueIPs(set map[PeerKey]bool) int {
	ips := make(map[netaddr.Addr]bool)
	for k := range set {
		ips[k.EP.Addr] = true
	}
	return len(ips)
}

// Config parameterizes a crawl.
type Config struct {
	// ID is the crawler's DHT identity.
	ID krpc.NodeID
	// QueriesPerPeer is the base number of random-target find_node
	// queries per peer (paper: 5).
	QueriesPerPeer int
	// LeakBatch is the escalation batch size on internal-peer discovery
	// (paper: 10).
	LeakBatch int
	// MaxPeers bounds how many peers are queried.
	MaxPeers int
	// PingLearned validates learned peers with bt_ping (Table 2's
	// responding-peer count). Costs one packet per learned peer.
	PingLearned bool
	// CallTimeout bounds the wait for a response on real transports;
	// zero means no waiting beyond the transport's synchronous delivery
	// (correct for the simulator).
	CallTimeout time.Duration
	// Seed drives target generation.
	Seed int64
}

// DefaultConfig mirrors the paper's crawl parameters.
func DefaultConfig() Config {
	return Config{
		QueriesPerPeer: 5,
		LeakBatch:      10,
		MaxPeers:       1 << 20,
		PingLearned:    true,
	}
}

// Crawler drives a crawl from a public vantage point.
type Crawler struct {
	cfg    Config
	tr     Transport
	global *routing.Global
	rng    *rand.Rand

	ds *Dataset
	// frontier holds crawlable endpoints; queued dedupes them.
	frontier []netaddr.Endpoint
	queued   map[netaddr.Endpoint]bool

	// last holds the response captured since the most recent call
	// started (delivered synchronously by the simulator, or via Poll on
	// real transports).
	last *krpc.Message

	// Metrics counts crawl activity.
	Metrics *metrics.Set

	tidSeq uint32
}

// New builds a crawler on a simulated host. The global routing table
// resolves leaker addresses to origin ASes, standing in for the BGP feeds
// the paper used.
func New(host *simnet.Host, global *routing.Global, cfg Config) *Crawler {
	return NewWithTransport(SimTransport(host), global, cfg)
}

// NewWithTransport builds a crawler over an arbitrary transport (a live
// UDP socket, for instance). The transport's inbound datagrams must be
// routed to HandlePacket; SimTransport wiring happens here, real
// transports deliver through Poll.
func NewWithTransport(tr Transport, global *routing.Global, cfg Config) *Crawler {
	c := &Crawler{
		cfg:     cfg,
		tr:      tr,
		global:  global,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		ds:      NewDataset(),
		queued:  make(map[netaddr.Endpoint]bool),
		Metrics: metrics.NewSet(),
	}
	if st, ok := tr.(*simTransport); ok {
		st.sock.OnRecv(c.HandlePacket)
	}
	return c
}

// Endpoint returns the crawler's DHT endpoint. Peers that learn it from
// our queries (or from chatter) can contact us, which in turn opens their
// NAT mappings for our queries — the property that makes peers behind
// restrictive NATs crawlable at all.
func (c *Crawler) Endpoint() netaddr.Endpoint { return c.tr.Endpoint() }

// Dataset returns the accumulated observations.
func (c *Crawler) Dataset() *Dataset { return c.ds }

// HandlePacket processes one inbound datagram. Simulated transports call
// it synchronously through the socket callback; real transports dispatch
// through Poll.
func (c *Crawler) HandlePacket(from netaddr.Endpoint, payload []byte) {
	m, err := krpc.Parse(payload)
	if err != nil {
		return
	}
	switch m.Kind {
	case krpc.Response:
		c.last = m
	case krpc.Query:
		// Participate: answer pings and find_node (with an empty node
		// list — the crawler does not re-propagate contacts), and enqueue
		// the source: a peer that reached us is reachable in return.
		c.Metrics.Counter("inbound_queries").Inc()
		switch m.Method {
		case krpc.MethodPing:
			c.tr.Send(from, krpc.EncodePingResponse(m.TID, c.cfg.ID))
		case krpc.MethodFindNode:
			c.tr.Send(from, krpc.EncodeFindNodeResponse(m.TID, c.cfg.ID, nil))
		}
		c.enqueue(from)
	}
}

func (c *Crawler) newTID() []byte {
	c.tidSeq++
	return []byte{byte(c.tidSeq >> 8), byte(c.tidSeq)}
}

// call performs one query round trip: synchronous on the simulator,
// deadline-bounded on real transports.
func (c *Crawler) call(ep netaddr.Endpoint, payload []byte) (*krpc.Message, bool) {
	c.last = nil
	c.tr.Send(ep, payload)
	if c.last == nil && c.cfg.CallTimeout > 0 {
		c.tr.Poll(c.HandlePacket, c.cfg.CallTimeout)
	}
	if c.last == nil {
		return nil, false
	}
	return c.last, true
}

// enqueue adds a crawlable endpoint to the frontier. Reserved addresses
// are never crawlable from the public vantage point, and the crawler's
// own endpoint (which peers propagate back after validating us) is not a
// peer.
func (c *Crawler) enqueue(ep netaddr.Endpoint) {
	if ep == c.Endpoint() {
		return
	}
	if c.queued[ep] || netaddr.ClassifyRange(ep.Addr) != netaddr.RangePublic {
		return
	}
	c.queued[ep] = true
	c.frontier = append(c.frontier, ep)
}

// Seed adds bootstrap endpoints to the frontier.
func (c *Crawler) Seed(eps ...netaddr.Endpoint) {
	for _, ep := range eps {
		c.enqueue(ep)
	}
}

// Run crawls until the frontier empties or MaxPeers peers were queried.
func (c *Crawler) Run() *Dataset {
	peersQueried := 0
	for len(c.frontier) > 0 && peersQueried < c.cfg.MaxPeers {
		ep := c.frontier[0]
		c.frontier = c.frontier[1:]
		if c.crawlPeer(ep) {
			peersQueried++
		}
	}
	return c.ds
}

// crawlPeer issues the query schedule against one endpoint. It reports
// whether the peer answered at all.
func (c *Crawler) crawlPeer(ep netaddr.Endpoint) bool {
	leakerASN, _ := c.global.OriginAS(ep.Addr)
	answered := false
	var leakerKey PeerKey

	internalSeen := make(map[PeerKey]bool)
	queries := c.cfg.QueriesPerPeer
	for round := 0; queries > 0; round++ {
		newInternal := false
		for i := 0; i < queries; i++ {
			var target krpc.NodeID
			c.rng.Read(target[:])
			m, ok := c.call(ep, krpc.EncodeFindNode(c.newTID(), c.cfg.ID, target))
			if !ok {
				break
			}
			if !answered {
				answered = true
				leakerKey = PeerKey{EP: ep, ID: m.ID}
				c.ds.Queried[leakerKey] = true
				c.ds.QueriedASN[leakerKey] = leakerASN
				c.Metrics.Counter("peers_queried").Inc()
			}
			for _, n := range m.Nodes {
				key := PeerKey{EP: n.EP, ID: n.ID}
				if !c.ds.Learned[key] {
					c.ds.Learned[key] = true
					c.Metrics.Counter("peers_learned").Inc()
					if c.cfg.PingLearned {
						c.pingPeer(key)
					}
				}
				if netaddr.IsReserved(n.EP.Addr) {
					if !internalSeen[key] {
						internalSeen[key] = true
						newInternal = true
					}
					c.ds.Leaks = append(c.ds.Leaks, LeakRecord{
						Leaker: leakerKey, LeakerASN: leakerASN, Internal: key,
					})
					c.Metrics.Counter("internal_peers_seen").Inc()
				} else {
					c.enqueue(n.EP)
				}
			}
		}
		// Escalate in batches of LeakBatch while internal peers keep
		// coming (§4.1).
		if !answered || !newInternal {
			break
		}
		queries = c.cfg.LeakBatch
	}
	return answered
}

// pingPeer bt_pings a learned contact and records responsiveness.
// Reserved-address contacts are unreachable from the crawler's public
// vantage point and are skipped (counted as non-responding).
func (c *Crawler) pingPeer(key PeerKey) {
	if netaddr.ClassifyRange(key.EP.Addr) != netaddr.RangePublic {
		return
	}
	m, ok := c.call(key.EP, krpc.EncodePing(c.newTID(), c.cfg.ID))
	if ok && m.ID == key.ID {
		c.ds.PingResponded[key] = true
		c.Metrics.Counter("peers_ping_responded").Inc()
	}
}
