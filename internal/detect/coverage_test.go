package detect

import (
	"testing"

	"cgn/internal/asdb"
)

// popOf builds a small population for Against tests.
func popOf(name string, asns ...uint32) asdb.Population {
	set := make(map[uint32]bool, len(asns))
	for _, a := range asns {
		set[a] = true
	}
	return asdb.Population{Name: name, ASNs: set}
}

// TestCoverageZeroVantageAS pins the accounting for ASes no method ever
// observed: a zero-vantage AS is neither covered nor positive, it never
// becomes a false negative in ScoreAgainstTruth (the score is defined
// over covered ASes only), and empty views divide to zero rather than
// NaN in the fraction helpers.
func TestCoverageZeroVantageAS(t *testing.T) {
	// AS 30 exists in the population and truly deploys CGN, but no
	// vantage point ever reached it.
	view := NewMethodView("bt", []uint32{10, 20}, []uint32{10})
	pop := popOf("routed", 10, 20, 30)

	mc := view.Against(pop)
	if mc.Covered != 2 || mc.Positive != 1 {
		t.Fatalf("Against = %+v, want covered 2 positive 1", mc)
	}
	if got := mc.CoveredFrac(); got != 2.0/3.0 {
		t.Errorf("CoveredFrac = %v, want 2/3", got)
	}

	truth := map[uint32]bool{10: true, 30: true}
	s := view.ScoreAgainstTruth(truth)
	if s.TruePositive != 1 || s.FalsePositive != 0 || s.FalseNegative != 0 {
		t.Errorf("zero-vantage AS leaked into the score: %+v", s)
	}

	// A method with no sessions at all: every fraction must be 0, not NaN.
	empty := NewMethodView("empty", nil, nil)
	mc = empty.Against(pop)
	if mc.CoveredFrac() != 0 || mc.PositiveFrac() != 0 {
		t.Errorf("empty view fractions not zero: %+v", mc)
	}
	if s := empty.ScoreAgainstTruth(truth); s != (Score{}) {
		t.Errorf("empty view scored %+v, want zero", s)
	}
	if empty.ScoreAgainstTruth(truth).Precision() != 1 {
		t.Error("precision over nothing flagged must be 1")
	}
}

// TestUnionSingleMethodEvidence: an AS seen by only one method must
// carry through the union exactly once, whichever side saw it.
func TestUnionSingleMethodEvidence(t *testing.T) {
	btOnly := NewMethodView("BitTorrent", []uint32{1, 2}, []uint32{1})
	nlOnly := NewMethodView("Netalyzr", []uint32{3, 4}, []uint32{4})
	u := Union("union", btOnly, nlOnly)

	for _, asn := range []uint32{1, 2, 3, 4} {
		if !u.Covered[asn] {
			t.Errorf("AS%d missing from union coverage", asn)
		}
	}
	if !u.Positive[1] || !u.Positive[4] {
		t.Error("single-method positives missing from union")
	}
	if u.Positive[2] || u.Positive[3] {
		t.Error("union invented positives for covered-negative ASes")
	}

	// Disjoint methods against a shared population: counts are sums.
	pop := popOf("all", 1, 2, 3, 4)
	mc := u.Against(pop)
	if mc.Covered != 4 || mc.Positive != 2 {
		t.Errorf("union Against = %+v, want covered 4 positive 2", mc)
	}
}

// TestUnionDoubleCountGuard: an AS both methods covered — and both
// flagged — appears once in the union's sets and once in every count
// derived from them. Sets make double-counting structurally impossible;
// this test keeps it that way if the representation ever changes.
func TestUnionDoubleCountGuard(t *testing.T) {
	bt := NewMethodView("BitTorrent", []uint32{7, 8}, []uint32{7})
	nl := NewMethodView("Netalyzr", []uint32{7, 9}, []uint32{7})
	u := Union("union", bt, nl)

	if len(u.Covered) != 3 {
		t.Errorf("union covers %d ASes, want 3 (AS7 must count once)", len(u.Covered))
	}
	if len(u.Positive) != 1 {
		t.Errorf("union has %d positives, want 1 (AS7 must count once)", len(u.Positive))
	}
	mc := u.Against(popOf("all", 7, 8, 9))
	if mc.Covered != 3 || mc.Positive != 1 {
		t.Errorf("union Against double-counted: %+v", mc)
	}
	s := u.ScoreAgainstTruth(map[uint32]bool{7: true})
	if s.TruePositive != 1 || s.FalsePositive != 0 || s.FalseNegative != 0 {
		t.Errorf("union score double-counted: %+v", s)
	}
}

// TestAgainstRequiresCoverage: a positive ASN that is not in the view's
// covered set (a pipeline inconsistency) and a positive outside the
// population must both be ignored by Against.
func TestAgainstRequiresCoverage(t *testing.T) {
	v := MethodView{
		Name:     "odd",
		Covered:  map[uint32]bool{1: true},
		Positive: map[uint32]bool{1: true, 2: true, 99: true},
	}
	mc := v.Against(popOf("pop", 1, 2))
	if mc.Covered != 1 {
		t.Errorf("covered = %d, want 1", mc.Covered)
	}
	if mc.Positive != 1 {
		t.Errorf("positive = %d, want 1: uncovered or out-of-population positives must not count", mc.Positive)
	}
}
