package detect

import (
	"fmt"
	"testing"

	"cgn/internal/asdb"
	"cgn/internal/crawler"
	"cgn/internal/krpc"
	"cgn/internal/netaddr"
	"cgn/internal/netalyzr"
	"cgn/internal/routing"
)

func addr(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

func key(ip string, port uint16, idByte byte) crawler.PeerKey {
	var id krpc.NodeID
	for i := range id {
		id[i] = idByte
	}
	return crawler.PeerKey{EP: netaddr.EndpointOf(addr(ip), port), ID: id}
}

// buildDataset fabricates a crawl dataset:
//
//	AS 100: CGN pattern — 6 leaker IPs x 6 shared internal peers (10X)
//	AS 200: home pattern — 8 isolated leaker/internal pairs (192X)
//	AS 300: VPN noise — internal peer leaked from two ASes
func buildDataset() *crawler.Dataset {
	ds := crawler.NewDataset()
	var idSeq byte

	addQueried := func(asn uint32, ip string) crawler.PeerKey {
		idSeq++
		k := key(ip, 6881, idSeq)
		ds.Queried[k] = true
		ds.QueriedASN[k] = asn
		return k
	}

	// AS 100: clustered.
	var cgnInternals []crawler.PeerKey
	for i := 0; i < 6; i++ {
		idSeq++
		cgnInternals = append(cgnInternals, key(fmt.Sprintf("10.0.0.%d", i+1), 6881, idSeq))
	}
	for i := 0; i < 6; i++ {
		leaker := addQueried(100, fmt.Sprintf("198.51.100.%d", i+1))
		for _, internal := range cgnInternals {
			ds.Leaks = append(ds.Leaks, crawler.LeakRecord{
				Leaker: leaker, LeakerASN: 100, Internal: internal,
			})
		}
	}

	// AS 200: isolated.
	for i := 0; i < 8; i++ {
		leaker := addQueried(200, fmt.Sprintf("198.51.200.%d", i+1))
		idSeq++
		internal := key("192.168.1.2", uint16(7000+i), idSeq)
		ds.Leaks = append(ds.Leaks, crawler.LeakRecord{
			Leaker: leaker, LeakerASN: 200, Internal: internal,
		})
	}

	// AS 300 + AS 100 leak the same internal peer: VPN noise.
	idSeq++
	vpnInternal := key("172.16.0.9", 6881, idSeq)
	l300 := addQueried(300, "203.0.114.1")
	ds.Leaks = append(ds.Leaks, crawler.LeakRecord{Leaker: l300, LeakerASN: 300, Internal: vpnInternal})
	l100 := addQueried(100, "198.51.100.99")
	ds.Leaks = append(ds.Leaks, crawler.LeakRecord{Leaker: l100, LeakerASN: 100, Internal: vpnInternal})

	return ds
}

func btCfg() BTConfig {
	return BTConfig{MinPeersQueried: 1}
}

func TestBitTorrentClusterDetection(t *testing.T) {
	res := AnalyzeBitTorrent(buildDataset(), btCfg())

	as100 := res.PerAS[100]
	if as100 == nil || !as100.CGN {
		t.Fatalf("AS100 = %+v, want CGN-positive", as100)
	}
	cs := as100.Clusters[netaddr.Range10]
	if cs.LeakerIPs != 6 || cs.InternalIPs != 6 {
		t.Errorf("AS100 10X cluster = %dx%d, want 6x6", cs.LeakerIPs, cs.InternalIPs)
	}
	if len(as100.CGNRanges) != 1 || as100.CGNRanges[0] != netaddr.Range10 {
		t.Errorf("AS100 ranges = %v", as100.CGNRanges)
	}

	as200 := res.PerAS[200]
	if as200 == nil || as200.CGN {
		t.Fatalf("AS200 = %+v, want negative (isolated leaks)", as200)
	}
	// Isolated home leaks: every household leaks only its own internal
	// peer. All households reuse the device address 192.168.1.2, but the
	// graph keys vertices by full peer identity, so the components stay
	// at one leaker IP each.
	cs200 := as200.Clusters[netaddr.Range192]
	if cs200.LeakerIPs != 1 {
		t.Errorf("AS200 largest cluster has %d leaker IPs, want 1", cs200.LeakerIPs)
	}
	if cs200.Positive(btCfg()) {
		t.Errorf("AS200 cluster %dx%d crossed the boundary", cs200.LeakerIPs, cs200.InternalIPs)
	}
}

func TestVPNExclusion(t *testing.T) {
	res := AnalyzeBitTorrent(buildDataset(), btCfg())
	if res.ExcludedVPN != 1 {
		t.Errorf("ExcludedVPN = %d, want 1", res.ExcludedVPN)
	}
	// The VPN-leaked 172X peer must not appear in any cluster.
	for asn, as := range res.PerAS {
		if cs, ok := as.Clusters[netaddr.Range172]; ok && cs.InternalIPs > 0 {
			t.Errorf("AS%d has 172X cluster %+v despite VPN exclusion", asn, cs)
		}
	}
}

func TestBTCoverageThreshold(t *testing.T) {
	ds := buildDataset()
	res := AnalyzeBitTorrent(ds, BTConfig{MinPeersQueried: 7})
	// AS100 has 7 queried peers (6 leakers + 1 VPN co-leaker), AS200 has
	// 8, AS300 has 2.
	covered := res.CoveredASes()
	if len(covered) != 2 || covered[0] != 100 || covered[1] != 200 {
		t.Errorf("covered = %v, want [100 200]", covered)
	}
	if pos := res.PositiveASes(); len(pos) != 1 || pos[0] != 100 {
		t.Errorf("positive = %v, want [100]", pos)
	}
}

func TestClusterStatBoundary(t *testing.T) {
	cfg := BTConfig{}
	cases := []struct {
		l, i int
		want bool
	}{
		{5, 5, true}, {4, 5, false}, {5, 4, false}, {100, 100, true}, {0, 0, false},
	}
	for _, c := range cases {
		cs := ClusterStat{LeakerIPs: c.l, InternalIPs: c.i}
		if cs.Positive(cfg) != c.want {
			t.Errorf("(%d,%d).Positive = %v, want %v", c.l, c.i, cs.Positive(cfg), c.want)
		}
	}
}

func newGlobal() *routing.Global {
	g := routing.NewGlobal()
	g.Announce(netaddr.MustParsePrefix("198.51.100.0/24"), 100)
	g.Announce(netaddr.MustParsePrefix("203.0.113.0/24"), 400)
	// 1.0.0.0/8 is routed by someone else; 25.0.0.0/8 is not routed.
	g.Announce(netaddr.MustParsePrefix("1.0.0.0/8"), 900)
	return g
}

func cellSession(asn uint32, dev, pub string) netalyzr.Session {
	return netalyzr.Session{ASN: asn, Cellular: true, IPdev: addr(dev), IPpub: addr(pub)}
}

func TestCellularDetection(t *testing.T) {
	g := newGlobal()
	var sessions []netalyzr.Session
	// AS 1: all translated (10X IPdev).
	for i := 0; i < 6; i++ {
		sessions = append(sessions, cellSession(1, fmt.Sprintf("10.0.0.%d", i+1), "198.51.100.9"))
	}
	// AS 2: all public, no translation.
	for i := 0; i < 6; i++ {
		dev := fmt.Sprintf("203.0.113.%d", i+1)
		sessions = append(sessions, cellSession(2, dev, dev))
	}
	// AS 3: unrouted public space used internally (25/8).
	for i := 0; i < 6; i++ {
		sessions = append(sessions, cellSession(3, fmt.Sprintf("25.0.0.%d", i+1), "198.51.100.10"))
	}
	// AS 4: routed-elsewhere space used internally (1/8): routed mismatch.
	for i := 0; i < 6; i++ {
		sessions = append(sessions, cellSession(4, fmt.Sprintf("1.0.0.%d", i+1), "198.51.100.11"))
	}
	// AS 5: too few sessions.
	sessions = append(sessions, cellSession(5, "10.9.9.9", "198.51.100.12"))

	res := AnalyzeCellular(sessions, g, NLConfig{})
	for _, asn := range []uint32{1, 3, 4} {
		if as := res.PerAS[asn]; as == nil || !as.CGN {
			t.Errorf("AS%d should be CGN-positive, got %+v", asn, as)
		}
	}
	if res.PerAS[2].CGN {
		t.Error("AS2 (public assignments) must be negative")
	}
	if res.PerAS[5].CGN {
		t.Error("AS5 (below session floor) must not be positive")
	}
	if res.PerAS[1].Mix() != MixInternalOnly || res.PerAS[2].Mix() != MixPublicOnly {
		t.Error("assignment mixes wrong")
	}
	// Table 4 column 2 categories.
	if res.DevCategories[netaddr.CatPrivate] != 7 { // 6 from AS1 + 1 from AS5
		t.Errorf("private IPdev count = %d", res.DevCategories[netaddr.CatPrivate])
	}
	if res.DevCategories[netaddr.CatUnrouted] != 6 {
		t.Errorf("unrouted IPdev count = %d", res.DevCategories[netaddr.CatUnrouted])
	}
	if res.DevCategories[netaddr.CatRoutedMismatch] != 6 {
		t.Errorf("mismatch IPdev count = %d", res.DevCategories[netaddr.CatRoutedMismatch])
	}
	covered := res.CoveredASes()
	if len(covered) != 4 {
		t.Errorf("covered = %v", covered)
	}
}

func nonCellSession(asn uint32, dev, cpe, pub string) netalyzr.Session {
	s := netalyzr.Session{ASN: asn, IPdev: addr(dev), IPpub: addr(pub)}
	if cpe != "" {
		s.HasCPE = true
		s.IPcpe = addr(cpe)
	}
	return s
}

func TestNonCellularDetection(t *testing.T) {
	g := newGlobal()
	var sessions []netalyzr.Session

	// Fill the common-CPE-block table: many sessions with 192.168.0/24
	// and 192.168.1/24 device addresses.
	for i := 0; i < 30; i++ {
		pub := fmt.Sprintf("203.0.113.%d", i+1)
		sessions = append(sessions, nonCellSession(10, fmt.Sprintf("192.168.0.%d", i+2), pub, pub))
		sessions = append(sessions, nonCellSession(10, fmt.Sprintf("192.168.1.%d", i+2), pub, pub))
	}

	// AS 20: true CGN — IPcpe in diverse 100.64/10 /24s.
	for i := 0; i < 12; i++ {
		sessions = append(sessions, nonCellSession(20,
			"192.168.0.7",
			fmt.Sprintf("100.64.%d.9", i),
			fmt.Sprintf("198.51.100.%d", 50+i)))
	}

	// AS 30: stacked home NATs — IPcpe inside the common blocks.
	for i := 0; i < 12; i++ {
		sessions = append(sessions, nonCellSession(30,
			"192.168.1.7",
			fmt.Sprintf("192.168.0.%d", i+100),
			fmt.Sprintf("198.51.100.%d", 80+i)))
	}

	// AS 40: one internal pool /24 reused (low diversity): e.g. a single
	// building NAT, below the 0.4N diversity bar.
	for i := 0; i < 12; i++ {
		sessions = append(sessions, nonCellSession(40,
			"192.168.0.8",
			fmt.Sprintf("10.77.1.%d", i+2),
			fmt.Sprintf("198.51.100.%d", 100+i)))
	}

	res := AnalyzeNonCellular(sessions, g, NLConfig{})

	if as := res.PerAS[20]; as == nil || !as.CGN {
		t.Fatalf("AS20 = %+v, want CGN-positive", as)
	}
	if as := res.PerAS[20]; as.Candidates != 12 || as.CPEBlocks != 12 {
		t.Errorf("AS20 funnel = %d candidates, %d blocks", as.Candidates, as.CPEBlocks)
	}
	if res.PerAS[30].CGN {
		t.Error("AS30 (stacked home NATs) must be negative")
	}
	if res.PerAS[30].Candidates != 0 {
		t.Errorf("AS30 candidates = %d, want 0 (filtered by top blocks)", res.PerAS[30].Candidates)
	}
	if res.FilteredByBlock != 12 {
		t.Errorf("FilteredByBlock = %d, want 12", res.FilteredByBlock)
	}
	if res.PerAS[40].CGN {
		t.Error("AS40 (low diversity) must be negative")
	}
	if res.PerAS[10].CGN {
		t.Error("AS10 (no translation) must be negative")
	}

	// IPcpe categories: AS10's 60 sessions are routed matches.
	if res.CPECategories[netaddr.CatRoutedMatch] != 60 {
		t.Errorf("routed match IPcpe = %d", res.CPECategories[netaddr.CatRoutedMatch])
	}
}

func TestCoverageTable(t *testing.T) {
	db := asdb.NewDB()
	add := func(asn uint32, kind asdb.Kind, region asdb.RIR, pbl int) {
		db.Add(&asdb.AS{ASN: asn, Kind: kind, Region: region, PBLEndUserAddrs: pbl, APNICSamples: pbl})
	}
	add(1, asdb.Eyeball, asdb.RIPE, 4096)
	add(2, asdb.Eyeball, asdb.APNIC, 4096)
	add(3, asdb.Eyeball, asdb.ARIN, 0) // not eyeball-listed
	add(4, asdb.Cellular, asdb.APNIC, 4096)
	add(5, asdb.Transit, asdb.RIPE, 0)

	bt := NewMethodView("BitTorrent", []uint32{1, 2, 3}, []uint32{1})
	nl := NewMethodView("Netalyzr non-cellular", []uint32{2}, []uint32{2})
	union := Union("BitTorrent ∪ Netalyzr", bt, nl)

	routed := db.RoutedPopulation()
	mc := union.Against(routed)
	if mc.Covered != 3 || mc.Positive != 2 {
		t.Errorf("union against routed = %+v", mc)
	}
	pbl := db.PBLPopulation()
	mc = union.Against(pbl)
	if mc.Covered != 2 || mc.Positive != 2 {
		t.Errorf("union against PBL = %+v", mc)
	}
	if mc.PositiveFrac() != 1.0 {
		t.Errorf("PositiveFrac = %v", mc.PositiveFrac())
	}
	if mc.CoveredFrac() != 2.0/3.0 {
		t.Errorf("CoveredFrac = %v", mc.CoveredFrac())
	}
}

func TestByRegion(t *testing.T) {
	db := asdb.NewDB()
	db.Add(&asdb.AS{ASN: 1, Kind: asdb.Eyeball, Region: asdb.RIPE, PBLEndUserAddrs: 4096})
	db.Add(&asdb.AS{ASN: 2, Kind: asdb.Eyeball, Region: asdb.RIPE, PBLEndUserAddrs: 4096})
	db.Add(&asdb.AS{ASN: 3, Kind: asdb.Cellular, Region: asdb.APNIC})

	eyeball := NewMethodView("x", []uint32{1, 2}, []uint32{1})
	cell := NewMethodView("y", []uint32{3}, []uint32{3})
	stats := ByRegion(db, eyeball, cell)

	ripe := stats[int(asdb.RIPE)]
	if ripe.EyeballTotal != 2 || ripe.EyeballCovered != 2 || ripe.EyeballPositive != 1 {
		t.Errorf("RIPE = %+v", ripe)
	}
	apnic := stats[int(asdb.APNIC)]
	if apnic.CellularCovered != 1 || apnic.CellularPositive != 1 {
		t.Errorf("APNIC = %+v", apnic)
	}
}

func TestScoreAgainstTruth(t *testing.T) {
	v := NewMethodView("m", []uint32{1, 2, 3, 4}, []uint32{1, 2})
	truth := map[uint32]bool{1: true, 3: true}
	s := v.ScoreAgainstTruth(truth)
	if s.TruePositive != 1 || s.FalsePositive != 1 || s.FalseNegative != 1 {
		t.Errorf("score = %+v", s)
	}
	if s.Precision() != 0.5 || s.Recall() != 0.5 {
		t.Errorf("precision=%v recall=%v", s.Precision(), s.Recall())
	}
	empty := NewMethodView("e", nil, nil).ScoreAgainstTruth(nil)
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty score should be perfect")
	}
}

func TestAssignmentMixStrings(t *testing.T) {
	if MixInternalOnly.String() == "" || MixPublicOnly.String() == "" || MixBoth.String() == "" {
		t.Error("mix names must render")
	}
}
