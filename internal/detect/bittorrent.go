// Package detect implements the paper's CGN detection pipelines — the
// primary contribution of the work:
//
//   - §4.1: per-AS clustering of BitTorrent DHT leak data, separating
//     carrier-grade NAT pooling from isolated home-NAT leakage;
//   - §4.2: Netalyzr-based detection, with the direct cellular
//     classification and the filtered /24-diversity heuristic for
//     non-cellular NAT444;
//   - §5: method union, population coverage (Table 5) and per-region
//     rollups (Figure 6).
//
// All thresholds are exported constants carrying the paper section that
// motivates them; the ablation benches sweep them.
package detect

import (
	"sort"

	"cgn/internal/crawler"
	"cgn/internal/graph"
	"cgn/internal/netaddr"
)

// Detection thresholds from §4.1.
const (
	// MinClusterLeakerIPs and MinClusterInternalIPs define the detection
	// boundary of Figure 4: the largest connected cluster must span at
	// least five public and five internal addresses, which rules out
	// home NATs re-addressed by dynamic IP churn.
	MinClusterLeakerIPs   = 5
	MinClusterInternalIPs = 5
	// DefaultMinPeersQueried is the per-AS crawl depth required before an
	// AS counts as covered by the BitTorrent method (the paper reports
	// detection among ASes with >= 200 queried peers).
	DefaultMinPeersQueried = 200
)

// BTConfig parameterizes the BitTorrent pipeline; zero values take the
// paper's defaults.
type BTConfig struct {
	MinLeakerIPs    int
	MinInternalIPs  int
	MinPeersQueried int
	// DisableVPNFilter turns off the exclusive-leak filter, for the A02
	// ablation: without it, internal contacts spread across ASes by
	// tunnels or non-validating peers masquerade as CGN evidence.
	DisableVPNFilter bool
}

func (c BTConfig) withDefaults() BTConfig {
	if c.MinLeakerIPs == 0 {
		c.MinLeakerIPs = MinClusterLeakerIPs
	}
	if c.MinInternalIPs == 0 {
		c.MinInternalIPs = MinClusterInternalIPs
	}
	if c.MinPeersQueried == 0 {
		c.MinPeersQueried = DefaultMinPeersQueried
	}
	return c
}

// ClusterStat describes the largest leak cluster of one (AS, range) pair
// in unique-IP terms — one point of Figure 4.
type ClusterStat struct {
	Range       netaddr.Range
	LeakerIPs   int
	InternalIPs int
}

// Positive reports whether the cluster crosses the detection boundary.
func (s ClusterStat) Positive(cfg BTConfig) bool {
	cfg = cfg.withDefaults()
	return s.LeakerIPs >= cfg.MinLeakerIPs && s.InternalIPs >= cfg.MinInternalIPs
}

// BTAS is the per-AS outcome of the BitTorrent pipeline.
type BTAS struct {
	ASN uint32
	// QueriedPeers counts responding peers crawled in this AS.
	QueriedPeers int
	// QueriedIPs counts their unique addresses.
	QueriedIPs int
	// Clusters holds the largest-cluster statistics per reserved range.
	Clusters map[netaddr.Range]ClusterStat
	// CGN is the detection verdict; CGNRanges lists the ranges whose
	// clusters crossed the boundary.
	CGN       bool
	CGNRanges []netaddr.Range
}

// Covered reports whether the AS was crawled deeply enough to count in
// coverage statistics.
func (a *BTAS) Covered(cfg BTConfig) bool {
	return a.QueriedPeers >= cfg.withDefaults().MinPeersQueried
}

// BTResult is the full BitTorrent analysis.
type BTResult struct {
	Cfg   BTConfig
	PerAS map[uint32]*BTAS
	// ExcludedVPN counts internal peers dropped by the exclusive-leak
	// filter (contacts leaked from more than one AS, i.e. VPN tunnels).
	ExcludedVPN int
}

// CoveredASes returns ASes meeting the crawl-depth bar, sorted.
func (r *BTResult) CoveredASes() []uint32 {
	var out []uint32
	for asn, as := range r.PerAS {
		if as.Covered(r.Cfg) {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PositiveASes returns covered CGN-positive ASes, sorted.
func (r *BTResult) PositiveASes() []uint32 {
	var out []uint32
	for asn, as := range r.PerAS {
		if as.Covered(r.Cfg) && as.CGN {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AnalyzeBitTorrent runs the §4.1 pipeline over a crawl dataset.
func AnalyzeBitTorrent(ds *crawler.Dataset, cfg BTConfig) *BTResult {
	cfg = cfg.withDefaults()
	res := &BTResult{Cfg: cfg, PerAS: make(map[uint32]*BTAS)}

	// Exclusive-leak filter: an internal peer leaked by peers in more
	// than one AS is VPN noise, not CGN evidence.
	leakASes := make(map[crawler.PeerKey]map[uint32]bool)
	for _, l := range ds.Leaks {
		if leakASes[l.Internal] == nil {
			leakASes[l.Internal] = make(map[uint32]bool)
		}
		leakASes[l.Internal][l.LeakerASN] = true
	}
	excluded := make(map[crawler.PeerKey]bool)
	for key, ases := range leakASes {
		if len(ases) > 1 {
			res.ExcludedVPN++
			if !cfg.DisableVPNFilter {
				excluded[key] = true
			}
		}
	}

	// Per (AS, range) bipartite graphs. Vertices are full peer
	// identities — (IP:port, nodeid), §4.1 — NOT bare addresses: distinct
	// households reuse the same RFC 1918 device addresses, and keying on
	// addresses would merge their components into spurious clusters.
	// Cluster sizes are then measured in unique IPs within a component,
	// exactly as Figure 4's axes are labeled.
	type asRange struct {
		asn uint32
		rng netaddr.Range
	}
	graphs := make(map[asRange]*graph.Bipartite[crawler.PeerKey, crawler.PeerKey])
	for _, l := range ds.Leaks {
		if excluded[l.Internal] || l.LeakerASN == 0 {
			continue
		}
		rng := netaddr.ClassifyRange(l.Internal.EP.Addr)
		key := asRange{l.LeakerASN, rng}
		g := graphs[key]
		if g == nil {
			g = graph.NewBipartite[crawler.PeerKey, crawler.PeerKey]()
			graphs[key] = g
		}
		g.AddEdge(l.Leaker, l.Internal)
	}

	for key, g := range graphs {
		as := res.perAS(key.asn)
		best := ClusterStat{Range: key.rng}
		for _, comp := range g.Components() {
			cs := ClusterStat{
				Range:       key.rng,
				LeakerIPs:   uniqueIPs(comp.Left),
				InternalIPs: uniqueIPs(comp.Right),
			}
			if cs.LeakerIPs > best.LeakerIPs ||
				(cs.LeakerIPs == best.LeakerIPs && cs.InternalIPs > best.InternalIPs) {
				best = cs
			}
		}
		as.Clusters[key.rng] = best
	}

	// Crawl-depth accounting from the queried peer set.
	queriedIPs := make(map[uint32]map[netaddr.Addr]bool)
	for key := range ds.Queried {
		asn := asnOfQueried(ds, key)
		if asn == 0 {
			continue
		}
		as := res.perAS(asn)
		as.QueriedPeers++
		if queriedIPs[asn] == nil {
			queriedIPs[asn] = make(map[netaddr.Addr]bool)
		}
		queriedIPs[asn][key.EP.Addr] = true
	}
	for asn, ips := range queriedIPs {
		res.perAS(asn).QueriedIPs = len(ips)
	}

	// Verdicts.
	for _, as := range res.PerAS {
		for rng, cs := range as.Clusters {
			if cs.Positive(cfg) {
				as.CGN = true
				as.CGNRanges = append(as.CGNRanges, rng)
			}
		}
		sort.Slice(as.CGNRanges, func(i, j int) bool { return as.CGNRanges[i] < as.CGNRanges[j] })
	}
	return res
}

func (r *BTResult) perAS(asn uint32) *BTAS {
	as := r.PerAS[asn]
	if as == nil {
		as = &BTAS{ASN: asn, Clusters: make(map[netaddr.Range]ClusterStat)}
		r.PerAS[asn] = as
	}
	return as
}

// asnOfQueried resolves a queried peer's AS through the dataset's index,
// stamped by the crawler at query time from the routing table.
func asnOfQueried(ds *crawler.Dataset, key crawler.PeerKey) uint32 {
	if asn, ok := ds.QueriedASN[key]; ok {
		return asn
	}
	return 0
}

// uniqueIPs counts distinct addresses among peer identities.
func uniqueIPs(peers []crawler.PeerKey) int {
	ips := make(map[netaddr.Addr]bool, len(peers))
	for _, p := range peers {
		ips[p.EP.Addr] = true
	}
	return len(ips)
}
