package detect

import (
	"sort"

	"cgn/internal/asdb"
)

// MethodCoverage is one row-fragment of Table 5: how many ASes of a
// population a method covered and how many of those it found CGN-positive.
type MethodCoverage struct {
	Method     string
	Population string
	PopSize    int
	Covered    int
	Positive   int
}

// CoveredFrac and PositiveFrac are the percentages Table 5 prints.
func (m MethodCoverage) CoveredFrac() float64 {
	if m.PopSize == 0 {
		return 0
	}
	return float64(m.Covered) / float64(m.PopSize)
}

// PositiveFrac is the CGN-positive share among covered ASes.
func (m MethodCoverage) PositiveFrac() float64 {
	if m.Covered == 0 {
		return 0
	}
	return float64(m.Positive) / float64(m.Covered)
}

// MethodView is a uniform facade over the three pipelines (and their
// union) for coverage accounting.
type MethodView struct {
	Name     string
	Covered  map[uint32]bool
	Positive map[uint32]bool
}

// NewMethodView builds a view from sorted AS lists.
func NewMethodView(name string, covered, positive []uint32) MethodView {
	v := MethodView{Name: name, Covered: map[uint32]bool{}, Positive: map[uint32]bool{}}
	for _, asn := range covered {
		v.Covered[asn] = true
	}
	for _, asn := range positive {
		v.Positive[asn] = true
	}
	return v
}

// BTView adapts a BitTorrent result.
func BTView(r *BTResult) MethodView {
	return NewMethodView("BitTorrent", r.CoveredASes(), r.PositiveASes())
}

// CellularView adapts the cellular Netalyzr result.
func CellularView(r *CellularResult) MethodView {
	return NewMethodView("Netalyzr cellular", r.CoveredASes(), r.PositiveASes())
}

// NonCellularView adapts the non-cellular Netalyzr result.
func NonCellularView(r *NonCellularResult) MethodView {
	return NewMethodView("Netalyzr non-cellular", r.CoveredASes(), r.PositiveASes())
}

// Union combines methods: covered if any covers, positive if any is
// positive (the "BitTorrent ∪ Netalyzr" row of Table 5).
func Union(name string, views ...MethodView) MethodView {
	u := MethodView{Name: name, Covered: map[uint32]bool{}, Positive: map[uint32]bool{}}
	for _, v := range views {
		for asn := range v.Covered {
			u.Covered[asn] = true
		}
		for asn := range v.Positive {
			u.Positive[asn] = true
		}
	}
	return u
}

// Against scores the view against one AS population.
func (v MethodView) Against(p asdb.Population) MethodCoverage {
	mc := MethodCoverage{Method: v.Name, Population: p.Name, PopSize: p.Size()}
	for asn := range v.Covered {
		if p.Contains(asn) {
			mc.Covered++
		}
	}
	for asn := range v.Positive {
		if p.Contains(asn) && v.Covered[asn] {
			mc.Positive++
		}
	}
	return mc
}

// RegionStat is one bar group of Figure 6.
type RegionStat struct {
	Region asdb.RIR
	// EyeballCovered / EyeballTotal: coverage of the eyeball population.
	EyeballCovered, EyeballTotal int
	// EyeballPositive: CGN-positive among covered eyeball ASes.
	EyeballPositive int
	// CellularCovered / CellularPositive: cellular ASes.
	CellularCovered, CellularPositive int
}

// ByRegion rolls a combined eyeball view and a cellular view up per RIR,
// using the PBL eyeball population as Figure 6 does.
func ByRegion(db *asdb.DB, eyeball MethodView, cellular MethodView) []RegionStat {
	pbl := db.PBLPopulation()
	out := make([]RegionStat, len(asdb.RIRs))
	for i, r := range asdb.RIRs {
		out[i].Region = r
	}
	idx := func(r asdb.RIR) *RegionStat { return &out[int(r)] }
	for _, as := range db.All() {
		st := idx(as.Region)
		if pbl.Contains(as.ASN) {
			st.EyeballTotal++
			if eyeball.Covered[as.ASN] {
				st.EyeballCovered++
				if eyeball.Positive[as.ASN] {
					st.EyeballPositive++
				}
			}
		}
		if as.Kind == asdb.Cellular {
			if cellular.Covered[as.ASN] {
				st.CellularCovered++
				if cellular.Positive[as.ASN] {
					st.CellularPositive++
				}
			}
		}
	}
	return out
}

// Score compares a method view to ground truth (the set of ASes that
// truly deploy CGN) over the covered ASes, yielding precision and recall
// — an evaluation the paper could only approximate by manual validation.
type Score struct {
	TruePositive, FalsePositive int
	FalseNegative               int
}

// Precision returns TP/(TP+FP), or 1 when nothing was flagged.
func (s Score) Precision() float64 {
	if s.TruePositive+s.FalsePositive == 0 {
		return 1
	}
	return float64(s.TruePositive) / float64(s.TruePositive+s.FalsePositive)
}

// Recall returns TP/(TP+FN), or 1 when there was nothing to find.
func (s Score) Recall() float64 {
	if s.TruePositive+s.FalseNegative == 0 {
		return 1
	}
	return float64(s.TruePositive) / float64(s.TruePositive+s.FalseNegative)
}

// ScoreAgainstTruth evaluates the view over its covered ASes.
func (v MethodView) ScoreAgainstTruth(truth map[uint32]bool) Score {
	var s Score
	asns := make([]uint32, 0, len(v.Covered))
	for asn := range v.Covered {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		switch {
		case v.Positive[asn] && truth[asn]:
			s.TruePositive++
		case v.Positive[asn] && !truth[asn]:
			s.FalsePositive++
		case !v.Positive[asn] && truth[asn]:
			s.FalseNegative++
		}
	}
	return s
}
