package detect

import (
	"sort"

	"cgn/internal/netaddr"
	"cgn/internal/netalyzr"
	"cgn/internal/routing"
	"cgn/internal/stats"
)

// Detection thresholds from §4.2.
const (
	// MinCellularSessions is the per-AS observation floor for the
	// (straightforward) cellular classification.
	MinCellularSessions = 5
	// MinNonCellularSessions is the per-AS floor for the NAT444
	// heuristic, higher because in-path home equipment widens the
	// behavior space.
	MinNonCellularSessions = 10
	// CPEBlockTopN: IPcpe addresses falling in the top-N /24 blocks of
	// observed IPdev assignments are attributed to stacked home NATs,
	// not CGNs.
	CPEBlockTopN = 10
	// DiversityFactor: an AS with N candidate sessions must show at
	// least DiversityFactor*N distinct /24 blocks of IPcpe to be called
	// a CGN.
	DiversityFactor = 0.4
)

// NLConfig parameterizes the Netalyzr pipelines; zero values take the
// paper's defaults.
type NLConfig struct {
	MinCellularSessions    int
	MinNonCellularSessions int
	CPEBlockTopN           int
	DiversityFactor        float64
}

func (c NLConfig) withDefaults() NLConfig {
	if c.MinCellularSessions == 0 {
		c.MinCellularSessions = MinCellularSessions
	}
	if c.MinNonCellularSessions == 0 {
		c.MinNonCellularSessions = MinNonCellularSessions
	}
	if c.CPEBlockTopN == 0 {
		c.CPEBlockTopN = CPEBlockTopN
	}
	if c.DiversityFactor == 0 {
		c.DiversityFactor = DiversityFactor
	}
	return c
}

// CellularAS is the per-AS cellular verdict.
type CellularAS struct {
	ASN      uint32
	Sessions int
	// Translated counts sessions whose IPdev is not a routed match —
	// direct evidence of carrier-side translation.
	Translated int
	// DevCategories tallies IPdev categories (Table 4, column 2).
	DevCategories stats.Freq[netaddr.Category]
	// CGN is the verdict.
	CGN bool
}

// AssignmentMix buckets a cellular AS the way §4.2 reports them.
type AssignmentMix uint8

// Cellular address assignment mixes.
const (
	// MixInternalOnly: every session got a translated address.
	MixInternalOnly AssignmentMix = iota
	// MixPublicOnly: every session got an untranslated public address.
	MixPublicOnly
	// MixBoth: some sessions translated, some not.
	MixBoth
)

// String names the mix.
func (m AssignmentMix) String() string {
	switch m {
	case MixInternalOnly:
		return "internal only"
	case MixPublicOnly:
		return "public only"
	case MixBoth:
		return "mixed"
	default:
		return "mix(?)"
	}
}

// Mix classifies the AS's assignment behavior.
func (a *CellularAS) Mix() AssignmentMix {
	switch {
	case a.Translated == a.Sessions:
		return MixInternalOnly
	case a.Translated == 0:
		return MixPublicOnly
	default:
		return MixBoth
	}
}

// CellularResult is the cellular pipeline outcome.
type CellularResult struct {
	Cfg   NLConfig
	PerAS map[uint32]*CellularAS
	// DevCategories tallies IPdev categories over all sessions.
	DevCategories stats.Freq[netaddr.Category]
}

// AnalyzeCellular classifies cellular sessions: with no home equipment in
// front of the device, a translated IPdev directly indicates a CGN.
func AnalyzeCellular(sessions []netalyzr.Session, global *routing.Global, cfg NLConfig) *CellularResult {
	cfg = cfg.withDefaults()
	res := &CellularResult{
		Cfg:           cfg,
		PerAS:         make(map[uint32]*CellularAS),
		DevCategories: stats.Freq[netaddr.Category]{},
	}
	for _, s := range sessions {
		if !s.Cellular {
			continue
		}
		as := res.PerAS[s.ASN]
		if as == nil {
			as = &CellularAS{ASN: s.ASN, DevCategories: stats.Freq[netaddr.Category]{}}
			res.PerAS[s.ASN] = as
		}
		cat := netaddr.Categorize(s.IPdev, global.Routed(s.IPdev), s.IPpub)
		as.Sessions++
		as.DevCategories.Add(cat)
		res.DevCategories.Add(cat)
		if cat != netaddr.CatRoutedMatch {
			as.Translated++
		}
	}
	for _, as := range res.PerAS {
		if as.Sessions >= cfg.MinCellularSessions && as.Translated > 0 {
			as.CGN = true
		}
	}
	return res
}

// CoveredASes returns cellular ASes with enough sessions, sorted.
func (r *CellularResult) CoveredASes() []uint32 {
	var out []uint32
	for asn, as := range r.PerAS {
		if as.Sessions >= r.Cfg.MinCellularSessions {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PositiveASes returns covered CGN-positive cellular ASes, sorted.
func (r *CellularResult) PositiveASes() []uint32 {
	var out []uint32
	for asn, as := range r.PerAS {
		if as.Sessions >= r.Cfg.MinCellularSessions && as.CGN {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NonCellularAS is the per-AS NAT444 verdict.
type NonCellularAS struct {
	ASN      uint32
	Sessions int
	// Candidates counts sessions surviving the funnel: IPcpe known,
	// IPcpe != IPpub, and IPcpe outside the common CPE assignment
	// blocks. These are the x-axis of Figure 5.
	Candidates int
	// CPEBlocks counts distinct /24s of candidate IPcpe addresses — the
	// y-axis of Figure 5.
	CPEBlocks int
	// CGN is the verdict.
	CGN bool
}

// NonCellularResult is the NAT444 pipeline outcome.
type NonCellularResult struct {
	Cfg   NLConfig
	PerAS map[uint32]*NonCellularAS
	// TopCPEBlocks are the filtered common CPE assignment /24s.
	TopCPEBlocks []netaddr.Prefix
	// CPECategories tallies IPcpe categories where UPnP answered
	// (Table 4, column 4); DevCategories tallies IPdev (column 3).
	CPECategories stats.Freq[netaddr.Category]
	DevCategories stats.Freq[netaddr.Category]
	// FilteredByBlock counts candidate sessions attributed to stacked
	// home NATs by the top-block filter.
	FilteredByBlock int
}

// AnalyzeNonCellular runs the §4.2 NAT444 heuristic over non-cellular
// sessions.
func AnalyzeNonCellular(sessions []netalyzr.Session, global *routing.Global, cfg NLConfig) *NonCellularResult {
	cfg = cfg.withDefaults()
	res := &NonCellularResult{
		Cfg:           cfg,
		PerAS:         make(map[uint32]*NonCellularAS),
		CPECategories: stats.Freq[netaddr.Category]{},
		DevCategories: stats.Freq[netaddr.Category]{},
	}

	// Step 0: learn the common CPE assignment blocks from IPdev.
	devBlocks := stats.Freq[netaddr.Prefix]{}
	for _, s := range sessions {
		if s.Cellular {
			continue
		}
		if netaddr.IsReserved(s.IPdev) {
			devBlocks.Add(s.IPdev.Block24())
		}
	}
	res.TopCPEBlocks = devBlocks.TopN(cfg.CPEBlockTopN)
	inTopBlocks := func(a netaddr.Addr) bool {
		blk := a.Block24()
		for _, p := range res.TopCPEBlocks {
			if p == blk {
				return true
			}
		}
		return false
	}

	// Step 1: per-session funnel.
	cpeBlocks := make(map[uint32]map[netaddr.Prefix]bool)
	for _, s := range sessions {
		if s.Cellular {
			continue
		}
		as := res.PerAS[s.ASN]
		if as == nil {
			as = &NonCellularAS{ASN: s.ASN}
			res.PerAS[s.ASN] = as
		}
		as.Sessions++
		res.DevCategories.Add(netaddr.Categorize(s.IPdev, global.Routed(s.IPdev), s.IPpub))
		if !s.HasCPE {
			continue
		}
		cat := netaddr.Categorize(s.IPcpe, global.Routed(s.IPcpe), s.IPpub)
		res.CPECategories.Add(cat)
		if cat == netaddr.CatRoutedMatch {
			continue // CPE holds the public address: no CGN on path
		}
		if inTopBlocks(s.IPcpe) {
			res.FilteredByBlock++
			continue // stacked home NAT, not a carrier NAT
		}
		as.Candidates++
		if cpeBlocks[s.ASN] == nil {
			cpeBlocks[s.ASN] = make(map[netaddr.Prefix]bool)
		}
		cpeBlocks[s.ASN][s.IPcpe.Block24()] = true
	}

	// Step 2: per-AS diversity verdict.
	for asn, as := range res.PerAS {
		as.CPEBlocks = len(cpeBlocks[asn])
		if as.Candidates >= cfg.MinNonCellularSessions &&
			float64(as.CPEBlocks) >= cfg.DiversityFactor*float64(as.Candidates) {
			as.CGN = true
		}
	}
	return res
}

// CoveredASes returns non-cellular ASes with enough sessions, sorted.
func (r *NonCellularResult) CoveredASes() []uint32 {
	var out []uint32
	for asn, as := range r.PerAS {
		if as.Sessions >= r.Cfg.MinNonCellularSessions {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PositiveASes returns CGN-positive non-cellular ASes, sorted.
func (r *NonCellularResult) PositiveASes() []uint32 {
	var out []uint32
	for asn, as := range r.PerAS {
		if as.CGN {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
