package campaign

import (
	"math"
	"strings"
	"testing"

	"cgn/internal/detect"
)

// TestSweepDeterministicAcrossWorkerCounts is the engine's core
// guarantee: the same (scenario, seed) grid produces byte-identical
// per-world reports and identical scores whatever the worker count.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	// p2p-dense rides along so the compiled-path forwarding engine's
	// determinism is witnessed under worker-pool parallelism on its most
	// forwarding-heavy workload; diurnal-week does the same for the
	// traffic engine (its E18 output is folded into every digest).
	cfg := Config{
		Scenarios:  []string{"small", "sparse-cgn", "port-starved", "p2p-dense", "diurnal-week"},
		Replicates: 2,
		BaseSeed:   3,
	}
	cfg.Workers = 1
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Worlds) != len(par.Worlds) {
		t.Fatalf("world counts differ: %d vs %d", len(seq.Worlds), len(par.Worlds))
	}
	for i := range seq.Worlds {
		s, p := seq.Worlds[i], par.Worlds[i]
		if s.Scenario != p.Scenario || s.Seed != p.Seed {
			t.Fatalf("world %d: grid order differs: %s/%d vs %s/%d", i, s.Scenario, s.Seed, p.Scenario, p.Seed)
		}
		if s.Digest != p.Digest {
			t.Errorf("world %s seed %d: digest differs across worker counts:\n 1 worker:  %s\n 3 workers: %s",
				s.Scenario, s.Seed, s.Digest, p.Digest)
		}
		for _, m := range Methods {
			if s.Scores[m] != p.Scores[m] {
				t.Errorf("world %s seed %d method %s: score differs: %+v vs %+v",
					s.Scenario, s.Seed, m, s.Scores[m], p.Scores[m])
			}
		}
	}
}

// TestSweepGridOrder pins the job expansion: scenario-major, seed-minor,
// seeds offset by BaseSeed.
func TestSweepGridOrder(t *testing.T) {
	cfg := Config{Scenarios: []string{"a", "b"}, Replicates: 3, BaseSeed: 10, Workers: 1}
	jobs := cfg.Jobs()
	want := []Job{
		{"a", 10}, {"a", 11}, {"a", 12},
		{"b", 10}, {"b", 11}, {"b", 12},
	}
	if len(jobs) != len(want) {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(want))
	}
	for i := range want {
		if jobs[i] != want[i] {
			t.Errorf("job %d = %+v, want %+v", i, jobs[i], want[i])
		}
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{Scenarios: nil, Replicates: 1, Workers: 1},
		{Scenarios: []string{"small"}, Replicates: 0, Workers: 1},
		{Scenarios: []string{"small"}, Replicates: 1, Workers: 0},
		{Scenarios: []string{"no-such-scenario"}, Replicates: 1, Workers: 1},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: Run(%+v) accepted, want error", i, cfg)
		}
	}
}

func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

// TestAggregateHandComputed checks the aggregation math against a fixture
// small enough to verify by hand.
func TestAggregateHandComputed(t *testing.T) {
	worlds := []WorldResult{
		{
			Scenario: "x", Seed: 1, ASes: 30, TrueCGN: 10,
			Scores: map[string]detect.Score{
				"BitTorrent": {TruePositive: 3, FalsePositive: 1, FalseNegative: 1},
			},
		},
		{
			Scenario: "x", Seed: 2, ASes: 32, TrueCGN: 12,
			Scores: map[string]detect.Score{
				"BitTorrent": {TruePositive: 1, FalsePositive: 0, FalseNegative: 1},
			},
		},
	}
	aggs := Aggregate(worlds)
	if len(aggs) != 1 {
		t.Fatalf("got %d scenario aggregates, want 1", len(aggs))
	}
	agg := aggs[0]
	if agg.Scenario != "x" || agg.Replicates != 2 {
		t.Fatalf("agg header = %q/%d, want x/2", agg.Scenario, agg.Replicates)
	}
	if !approx(agg.ASes, 31) || !approx(agg.TrueCGN, 11) {
		t.Errorf("world shape means = %v ASes, %v CGN; want 31, 11", agg.ASes, agg.TrueCGN)
	}

	var bt *MethodAgg
	for i := range agg.Methods {
		if agg.Methods[i].Method == "BitTorrent" {
			bt = &agg.Methods[i]
		}
	}
	if bt == nil {
		t.Fatal("no BitTorrent aggregate")
	}
	// Replicate 1: precision 3/4 = 0.75, recall 3/4 = 0.75.
	// Replicate 2: precision 1/1 = 1.00, recall 1/2 = 0.50.
	// Means 0.875 and 0.625; both have sample stddev
	// sqrt(2·0.125²/1) = 0.1767767, CI half 1.96·sd/√2 = 0.245.
	if !approx(bt.Precision.Mean, 0.875) {
		t.Errorf("precision mean = %v, want 0.875", bt.Precision.Mean)
	}
	if !approx(bt.Recall.Mean, 0.625) {
		t.Errorf("recall mean = %v, want 0.625", bt.Recall.Mean)
	}
	wantSD := math.Sqrt(2 * 0.125 * 0.125)
	wantHalf := 1.96 * wantSD / math.Sqrt(2)
	for _, ci := range []struct {
		name string
		got  float64
		want float64
	}{
		{"precision sd", bt.Precision.StdDev, wantSD},
		{"recall sd", bt.Recall.StdDev, wantSD},
		{"precision half", bt.Precision.Half, wantHalf},
		{"recall half", bt.Recall.Half, wantHalf},
	} {
		if !approx(ci.got, ci.want) {
			t.Errorf("%s = %v, want %v", ci.name, ci.got, ci.want)
		}
	}
	if !approx(bt.TP, 2) || !approx(bt.FP, 0.5) || !approx(bt.FN, 1) {
		t.Errorf("count means tp=%v fp=%v fn=%v, want 2, 0.5, 1", bt.TP, bt.FP, bt.FN)
	}

	// Methods with no observations aggregate to empty distributions.
	for _, m := range agg.Methods {
		if m.Method != "BitTorrent" && m.Precision.N != 0 {
			t.Errorf("method %s has %d observations, want 0", m.Method, m.Precision.N)
		}
	}
}

func TestRenderShowsEveryMethod(t *testing.T) {
	worlds := []WorldResult{{
		Scenario: "small", Seed: 1, ASes: 29, TrueCGN: 9,
		Scores: map[string]detect.Score{
			"BitTorrent":            {TruePositive: 2},
			"Netalyzr cellular":     {TruePositive: 6},
			"Netalyzr non-cellular": {TruePositive: 1},
			"BitTorrent ∪ Netalyzr": {TruePositive: 3},
		},
	}}
	out := Render(Aggregate(worlds))
	for _, want := range append([]string{"Scenario small", "precision"}, Methods...) {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
