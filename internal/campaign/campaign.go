// Package campaign is the parallel sweep engine: it runs full measurement
// campaigns over many generated worlds — a (scenario, seed) grid — on a
// worker pool, scores every world against its ground truth, and
// aggregates precision/recall into cross-replicate distributions with
// confidence intervals.
//
// The paper reports point estimates from one campaign against one
// Internet; replicated synthetic worlds turn those into distributions.
// Each world stays single-threaded and deterministic — the same seed
// produces byte-identical per-world results whatever the worker count —
// and all parallelism comes from running worlds side by side.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"cgn/internal/detect"
	"cgn/internal/internet"
	"cgn/internal/report"
)

// Methods lists the detection-method names every world is scored under,
// in report order.
var Methods = []string{
	"BitTorrent",
	"Netalyzr cellular",
	"Netalyzr non-cellular",
	"BitTorrent ∪ Netalyzr",
}

// Config parameterizes a sweep.
type Config struct {
	// Scenarios are registry names (internet.Names lists them); each is
	// resolved and validated before any world runs.
	Scenarios []string
	// Replicates is the number of seeds per scenario.
	Replicates int
	// BaseSeed offsets the replicate seeds: replicate i of every
	// scenario runs with seed BaseSeed+i.
	BaseSeed int64
	// Workers is the worker-pool size; 1 runs the sweep fully
	// sequentially.
	Workers int
	// PortSpan and PortQuota, when nonzero, override every scenario's CGN
	// port provisioning (Scenario.CGNPortSpan / CGNPortQuota) — the sweep
	// analogue of cgnsim's -portspan/-portquota flags.
	PortSpan  int
	PortQuota int
	// TrafficWorkers is each world's worker-pool size for the E18
	// traffic-engine replay (realm-parallel). 0 or 1 keeps the replay
	// sequential — the right default when the sweep's own worker pool
	// already saturates the machine — and per-world results are
	// byte-identical at any value, so the grid aggregates never depend
	// on it.
	TrafficWorkers int
	// TrafficShards selects each world's E18 NAT engine: 0 keeps the
	// legacy single-table replay (the goldens' universe); >= 1 switches
	// to the intra-realm sharded engine, identical at any shard count
	// but a distinct universe from legacy (report.CollectOptions has the
	// full contract).
	TrafficShards int
	// OnWorld, when set, is called after each world completes, from the
	// worker that ran it. Progress reporting only — results arrive in
	// deterministic order via Sweep's return regardless.
	OnWorld func(WorldResult)
}

// Job is one (scenario, seed) cell of the sweep grid.
type Job struct {
	Scenario string
	Seed     int64
}

// WorldResult is the scored outcome of one world's campaign.
type WorldResult struct {
	Scenario string
	Seed     int64
	// Scores maps method name (see Methods) to its ground-truth score.
	Scores map[string]detect.Score
	// Digest is a SHA-256 over the world's full rendered report — the
	// byte-identity witness determinism tests compare across worker
	// counts.
	Digest string
	// Ports is the E17 port-pressure summary over the world's carrier
	// NATs (utilization and allocation-failure outcomes).
	Ports report.PortPressure
	// Traffic is the E18 temporal summary (per-subscriber concurrent
	// port percentiles and peak utilization under the scenario's
	// traffic profile); Enabled is false when the scenario has none.
	Traffic report.TrafficPressure
	// Adversarial is the E19 attack x defense summary (legitimate
	// failure rates undefended vs token-bucket-defended); Enabled is
	// false when the scenario's traffic profile has no adversaries.
	Adversarial report.AdversarialPressure
	// Observe is the E21 longitudinal summary (detection recall and
	// precision at the shortest and longest observation windows);
	// Enabled is false when the scenario has no observation horizon.
	Observe report.ObservePressure
	// Faults is the E22 fault-injection summary (allocation-failure
	// rate before vs during the harshest pool outage, recovery time and
	// disrupted flows); Enabled is false when the scenario schedules no
	// faults.
	Faults report.FaultPressure
	// ASes and TrueCGN describe the world; Elapsed is the campaign wall
	// time on its worker.
	ASes    int
	TrueCGN int
	Elapsed time.Duration
}

// Sweep holds every per-world result of a finished sweep, ordered by the
// job grid (scenario-major, seed-minor), plus the total wall time.
type Sweep struct {
	Config  Config
	Worlds  []WorldResult
	Elapsed time.Duration
}

// Jobs expands the configured grid in deterministic order.
func (cfg Config) Jobs() []Job {
	jobs := make([]Job, 0, len(cfg.Scenarios)*cfg.Replicates)
	for _, name := range cfg.Scenarios {
		for i := 0; i < cfg.Replicates; i++ {
			jobs = append(jobs, Job{Scenario: name, Seed: cfg.BaseSeed + int64(i)})
		}
	}
	return jobs
}

// validate resolves every scenario name and checks the grid shape.
func (cfg Config) validate() error {
	if len(cfg.Scenarios) == 0 {
		return fmt.Errorf("campaign: no scenarios configured")
	}
	if cfg.Replicates < 1 {
		return fmt.Errorf("campaign: replicates = %d, need at least 1", cfg.Replicates)
	}
	if cfg.Workers < 1 {
		return fmt.Errorf("campaign: workers = %d, need at least 1", cfg.Workers)
	}
	for _, name := range cfg.Scenarios {
		sc, err := internet.Lookup(name)
		if err != nil {
			return err
		}
		sc.ApplyPortOverrides(cfg.PortSpan, cfg.PortQuota)
		if err := sc.Validate(); err != nil {
			return fmt.Errorf("campaign: scenario %q: %w", name, err)
		}
	}
	return nil
}

// Run executes the sweep: every (scenario, seed) job on a pool of
// cfg.Workers workers. Results come back indexed by job position, so the
// returned order — and every aggregate derived from it — is independent
// of scheduling.
func Run(cfg Config) (*Sweep, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	jobs := cfg.Jobs()
	results := make([]WorldResult, len(jobs))

	start := time.Now()
	var wg sync.WaitGroup
	next := make(chan int)
	workers := cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runWorld(cfg, jobs[i])
				if cfg.OnWorld != nil {
					cfg.OnWorld(results[i])
				}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	return &Sweep{Config: cfg, Worlds: results, Elapsed: time.Since(start)}, nil
}

// runWorld builds one world, runs the full campaign and scores it. The
// world — generator, simulated network, campaign and analyses — is
// confined to the calling goroutine; report.Collect's internal stage
// concurrency operates on immutable collected data only.
func runWorld(cfg Config, job Job) WorldResult {
	start := time.Now()
	sc, err := internet.Lookup(job.Scenario)
	if err != nil {
		// validate() resolved this name already; a failure here is a
		// registry bug, not an input error.
		panic(err)
	}
	sc.ApplyPortOverrides(cfg.PortSpan, cfg.PortQuota)
	sc.Seed = job.Seed
	w := internet.Build(sc)
	b := report.CollectWith(w, report.CollectOptions{
		TrafficWorkers: cfg.TrafficWorkers,
		TrafficShards:  cfg.TrafficShards,
	})

	truth := w.CGNTruth()
	sum := sha256.Sum256([]byte(b.All()))
	res := WorldResult{
		Scenario:    job.Scenario,
		Seed:        job.Seed,
		Scores:      make(map[string]detect.Score, 4),
		Digest:      hex.EncodeToString(sum[:]),
		Ports:       b.Load.Pressure(),
		Traffic:     b.Traffic.Pressure(),
		Adversarial: b.Adversarial.Pressure(),
		Observe:     b.Observe.Pressure(),
		Faults:      b.Faults.Pressure(),
		ASes:        w.DB.Len(),
		TrueCGN:     len(truth),
		Elapsed:     time.Since(start),
	}
	for _, v := range []detect.MethodView{b.BTV, b.CellV, b.NonCellV, b.UnionV} {
		res.Scores[v.Name] = v.ScoreAgainstTruth(truth)
	}
	return res
}
