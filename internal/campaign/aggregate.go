package campaign

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cgn/internal/stats"
)

// MethodAgg aggregates one detection method's scores across the
// replicates of one scenario.
type MethodAgg struct {
	Method string
	// Precision and Recall are cross-replicate distributions; each
	// replicate world contributes one observation.
	Precision stats.MeanCI
	Recall    stats.MeanCI
	// TP/FP/FN are mean counts per world.
	TP, FP, FN float64
}

// ScenarioAgg aggregates one scenario's replicates.
type ScenarioAgg struct {
	Scenario   string
	Replicates int
	// ASes and TrueCGN are mean world shape (constant across replicates
	// up to the CGN deployment draw).
	ASes    float64
	TrueCGN float64
	Methods []MethodAgg
	// Port pressure (E17) across replicates: mean realm counts, peak
	// utilization distribution and the global allocation-failure rate.
	CGNRealms       float64
	SaturatedRealms float64
	Utilization     stats.MeanCI
	AllocFailRate   stats.MeanCI
	// Traffic (E18) across replicates, present when the scenario runs
	// the traffic engine: mean per-subscriber concurrent-port
	// percentiles and the peak-utilization distribution.
	TrafficEnabled  bool
	TrafficMedian   float64
	TrafficP99      stats.MeanCI
	TrafficMax      float64
	TrafficPeak     stats.MeanCI
	TrafficFailRate stats.MeanCI
	// Adversarial collateral (E19) across replicates, present when the
	// scenario's traffic profile carries attackers: the legitimate
	// allocation-failure rate undefended vs with the token bucket
	// armed, plus mean defense-counter totals per world.
	AdversarialEnabled   bool
	AdversarialAttackers float64
	AdvUndefendedFail    stats.MeanCI
	AdvDefendedFail      stats.MeanCI
	AdvRateLimited       float64
	AdvEvictions         float64
	// Longitudinal observation (E21) across replicates, present when the
	// scenario runs the fleet engine: detection recall and precision at
	// the shortest and longest observation windows.
	ObserveEnabled     bool
	ObserveShortDays   int
	ObserveLongDays    int
	ObserveShortRecall stats.MeanCI
	ObserveLongRecall  stats.MeanCI
	ObserveLongPrec    stats.MeanCI
	// Fault injection (E22) across replicates, present when the scenario
	// schedules faults: the legitimate allocation-failure rate before vs
	// during the harshest pool outage, the recovery time after
	// restoration and the mean disrupted-flow total per world.
	FaultEnabled      bool
	FaultBaselineFail stats.MeanCI
	FaultOutageFail   stats.MeanCI
	FaultRecovery     stats.MeanCI
	FaultDisrupted    float64
}

// Aggregate folds per-world results into per-scenario distributions.
// Scenarios appear in first-seen (grid) order, methods in Methods order.
func Aggregate(worlds []WorldResult) []ScenarioAgg {
	byScenario := make(map[string][]WorldResult)
	var order []string
	for _, w := range worlds {
		if _, seen := byScenario[w.Scenario]; !seen {
			order = append(order, w.Scenario)
		}
		byScenario[w.Scenario] = append(byScenario[w.Scenario], w)
	}

	out := make([]ScenarioAgg, 0, len(order))
	for _, name := range order {
		reps := byScenario[name]
		agg := ScenarioAgg{Scenario: name, Replicates: len(reps)}
		var utils, fails, tp99, tpeak, tfail []float64
		var tmed, tmax float64
		var advUnd, advDef []float64
		var advAtk, advRL, advEv float64
		var osRec, olRec, olPrec []float64
		var fBase, fOut, fRec []float64
		var fDisr float64
		for _, w := range reps {
			agg.ASes += float64(w.ASes) / float64(len(reps))
			agg.TrueCGN += float64(w.TrueCGN) / float64(len(reps))
			agg.CGNRealms += float64(w.Ports.Realms) / float64(len(reps))
			agg.SaturatedRealms += float64(w.Ports.Saturated) / float64(len(reps))
			utils = append(utils, w.Ports.MeanUtilization)
			fails = append(fails, w.Ports.AllocFailureRate)
			if w.Traffic.Enabled {
				agg.TrafficEnabled = true
				tmed += float64(w.Traffic.MedianPorts)
				tmax += float64(w.Traffic.MaxPorts)
				tp99 = append(tp99, float64(w.Traffic.P99Ports))
				tpeak = append(tpeak, w.Traffic.PeakUtilization)
				tfail = append(tfail, w.Traffic.FailureRate)
			}
			if w.Adversarial.Enabled {
				agg.AdversarialEnabled = true
				advAtk += float64(w.Adversarial.Attackers)
				advUnd = append(advUnd, w.Adversarial.UndefendedLegitFailRate)
				advDef = append(advDef, w.Adversarial.DefendedLegitFailRate)
				advRL += float64(w.Adversarial.RateLimited)
				advEv += float64(w.Adversarial.Evictions)
			}
			if w.Observe.Enabled {
				agg.ObserveEnabled = true
				agg.ObserveShortDays = w.Observe.ShortWindow
				agg.ObserveLongDays = w.Observe.LongWindow
				osRec = append(osRec, w.Observe.ShortRecall)
				olRec = append(olRec, w.Observe.LongRecall)
				olPrec = append(olPrec, w.Observe.LongPrec)
			}
			if w.Faults.Enabled {
				agg.FaultEnabled = true
				fBase = append(fBase, w.Faults.BaselineFailRate)
				fOut = append(fOut, w.Faults.OutageFailRate)
				// A world that never recovered within its run reports -1;
				// clamp to the horizon is impossible here, so exclude it
				// from the mean rather than dragging it negative.
				if w.Faults.RecoveryTicks >= 0 {
					fRec = append(fRec, float64(w.Faults.RecoveryTicks))
				}
				fDisr += float64(w.Faults.Disrupted)
			}
		}
		agg.Utilization = stats.MeanConfidence(utils)
		agg.AllocFailRate = stats.MeanConfidence(fails)
		// Traffic means divide by the traffic-enabled replicate count, not
		// the full grid: a seed whose world loads no CGN realm reports
		// Enabled=false and must not drag the mean toward zero.
		if n := len(tp99); n > 0 {
			agg.TrafficMedian = tmed / float64(n)
			agg.TrafficMax = tmax / float64(n)
		}
		agg.TrafficP99 = stats.MeanConfidence(tp99)
		agg.TrafficPeak = stats.MeanConfidence(tpeak)
		agg.TrafficFailRate = stats.MeanConfidence(tfail)
		// Adversarial means likewise divide by the adversarial-enabled
		// replicate count only.
		if n := len(advUnd); n > 0 {
			agg.AdversarialAttackers = advAtk / float64(n)
			agg.AdvRateLimited = advRL / float64(n)
			agg.AdvEvictions = advEv / float64(n)
		}
		agg.AdvUndefendedFail = stats.MeanConfidence(advUnd)
		agg.AdvDefendedFail = stats.MeanConfidence(advDef)
		agg.ObserveShortRecall = stats.MeanConfidence(osRec)
		agg.ObserveLongRecall = stats.MeanConfidence(olRec)
		agg.ObserveLongPrec = stats.MeanConfidence(olPrec)
		if n := len(fBase); n > 0 {
			agg.FaultDisrupted = fDisr / float64(n)
		}
		agg.FaultBaselineFail = stats.MeanConfidence(fBase)
		agg.FaultOutageFail = stats.MeanConfidence(fOut)
		agg.FaultRecovery = stats.MeanConfidence(fRec)
		for _, method := range Methods {
			ma := MethodAgg{Method: method}
			var prec, rec []float64
			for _, w := range reps {
				s, ok := w.Scores[method]
				if !ok {
					continue
				}
				prec = append(prec, s.Precision())
				rec = append(rec, s.Recall())
				ma.TP += float64(s.TruePositive) / float64(len(reps))
				ma.FP += float64(s.FalsePositive) / float64(len(reps))
				ma.FN += float64(s.FalseNegative) / float64(len(reps))
			}
			ma.Precision = stats.MeanConfidence(prec)
			ma.Recall = stats.MeanConfidence(rec)
			agg.Methods = append(agg.Methods, ma)
		}
		out = append(out, agg)
	}
	return out
}

// Render formats the aggregates as the sweep's precision/recall table:
// one block per scenario, one row per method, mean ± 95% CI over the
// replicates.
func Render(aggs []ScenarioAgg) string {
	var sb strings.Builder
	for i, agg := range aggs {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(fmt.Sprintf("Scenario %s — %d replicates, %.0f ASes, %.1f true CGN ASes (mean)\n",
			agg.Scenario, agg.Replicates, agg.ASes, agg.TrueCGN))
		w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "Method\tprecision (95% CI)\trecall (95% CI)\ttp\tfp\tfn")
		for _, m := range agg.Methods {
			fmt.Fprintf(w, "%s\t%s\t%s\t%.1f\t%.1f\t%.1f\n",
				m.Method, m.Precision, m.Recall, m.TP, m.FP, m.FN)
		}
		w.Flush()
		sb.WriteString(fmt.Sprintf("E17 port pressure: %.1f CGN realms (%.1f saturated), peak utilization %s, allocation-failure rate %s\n",
			agg.CGNRealms, agg.SaturatedRealms, agg.Utilization, agg.AllocFailRate))
		if agg.TrafficEnabled {
			sb.WriteString(fmt.Sprintf("E18 traffic: concurrent ports/subscriber median %.1f, p99 %s, max %.1f; peak utilization %s, allocation-failure rate %s\n",
				agg.TrafficMedian, agg.TrafficP99, agg.TrafficMax, agg.TrafficPeak, agg.TrafficFailRate))
		}
		if agg.AdversarialEnabled {
			sb.WriteString(fmt.Sprintf("E19 adversarial: %.1f attackers/world, legit alloc-failure rate %.2f%% ± %.2f%% undefended -> %.2f%% ± %.2f%% with token bucket (mean %.0f rate-limited, %.0f evicted per world)\n",
				agg.AdversarialAttackers,
				100*agg.AdvUndefendedFail.Mean, 100*agg.AdvUndefendedFail.Half,
				100*agg.AdvDefendedFail.Mean, 100*agg.AdvDefendedFail.Half,
				agg.AdvRateLimited, agg.AdvEvictions))
		}
		if agg.ObserveEnabled {
			sb.WriteString(fmt.Sprintf("E21 longitudinal: recall %s at %dd -> %s at %dd, precision %s at %dd\n",
				agg.ObserveShortRecall, agg.ObserveShortDays, agg.ObserveLongRecall, agg.ObserveLongDays,
				agg.ObserveLongPrec, agg.ObserveLongDays))
		}
		if agg.FaultEnabled {
			sb.WriteString(fmt.Sprintf("E22 faults: legit alloc-failure rate %.2f%% ± %.2f%% baseline -> %.2f%% ± %.2f%% during the harshest pool outage; recovery %.1f ± %.1f ticks after restoration, %.0f flows disrupted/world\n",
				100*agg.FaultBaselineFail.Mean, 100*agg.FaultBaselineFail.Half,
				100*agg.FaultOutageFail.Mean, 100*agg.FaultOutageFail.Half,
				agg.FaultRecovery.Mean, agg.FaultRecovery.Half, agg.FaultDisrupted))
		}
	}
	return sb.String()
}
