// Package metrics provides tiny counter/gauge instrumentation used by the
// NAT engine, the DHT crawler and the simulator. The design mirrors the
// packet-counter style of kernel dataplane observability: cheap atomic
// counters registered in a set, rendered as sorted "name value" lines.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Store overwrites the count. It exists for state restoration (resuming
// a checkpointed engine continues its counters rather than restarting
// them); live instrumentation should only ever Inc/Add.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Gauge is a settable instantaneous value. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Set is a named collection of counters and gauges.
type Set struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewSet returns an empty metric set.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (s *Set) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Counters returns the current value of every registered counter by
// name. Unlike Snapshot it excludes gauges, so a serialize/restore
// round-trip through Store cannot turn a gauge into a counter.
func (s *Set) Counters() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.counters))
	for name, c := range s.counters {
		out[name] = c.Value()
	}
	return out
}

// Snapshot returns all metric values by name.
func (s *Set) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters)+len(s.gauges))
	for name, c := range s.counters {
		out[name] = int64(c.Value())
	}
	for name, g := range s.gauges {
		out[name] = g.Value()
	}
	return out
}

// String renders the set as sorted "name value" lines.
func (s *Set) String() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, snap[n])
	}
	return b.String()
}
