package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
}

func TestSetReusesByName(t *testing.T) {
	s := NewSet()
	s.Counter("pkts").Inc()
	s.Counter("pkts").Inc()
	if s.Counter("pkts").Value() != 2 {
		t.Error("same name must return the same counter")
	}
	s.Gauge("mappings").Set(9)
	if s.Gauge("mappings").Value() != 9 {
		t.Error("same name must return the same gauge")
	}
}

func TestSnapshotAndString(t *testing.T) {
	s := NewSet()
	s.Counter("b").Add(2)
	s.Counter("a").Add(1)
	s.Gauge("c").Set(-5)
	snap := s.Snapshot()
	if snap["a"] != 1 || snap["b"] != 2 || snap["c"] != -5 {
		t.Errorf("Snapshot = %v", snap)
	}
	str := s.String()
	if !strings.Contains(str, "a 1\n") || !strings.Contains(str, "c -5\n") {
		t.Errorf("String = %q", str)
	}
	// Sorted output: a before b before c.
	if strings.Index(str, "a 1") > strings.Index(str, "b 2") {
		t.Error("String output must be sorted by name")
	}
}

func TestConcurrentCounters(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Counter("n").Inc()
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("n").Value(); got != 8000 {
		t.Errorf("concurrent count = %d, want 8000", got)
	}
}
