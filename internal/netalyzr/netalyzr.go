// Package netalyzr reimplements the measurement-session side of the
// paper's methodology (§4.2, §6): a client on a subscriber device collects
// local addressing information (IPdev), asks its gateway for the CPE's WAN
// address via UPnP (IPcpe), opens ten sequential TCP flows against an echo
// server to observe translation of addresses and ports (IPpub, port
// allocation, pooling), classifies on-path NAT mappings via STUN, and runs
// the TTL-driven NAT enumeration of §6.3.
//
// The output of a session is a Session record; the detection (§4.2
// heuristics) and property analyses (§6) consume batches of them.
package netalyzr

import (
	"fmt"
	"math/rand"
	"strings"

	"cgn/internal/netaddr"
	"cgn/internal/simnet"
	"cgn/internal/stun"
	"cgn/internal/ttlprobe"
	"cgn/internal/upnp"
)

// Well-known service ports of the measurement servers.
const (
	// EchoUDPPort answers UDP echo with the observed source.
	EchoUDPPort = 7077
	// EchoTCPPort is the high TCP port of §6.2's port-translation test.
	EchoTCPPort = 33400
	// STUNPrimaryPort / STUNAlternatePort are the server's two STUN ports.
	STUNPrimaryPort   = 3478
	STUNAlternatePort = 3479
)

// FlowObs is one observed flow of the port test: the local source port
// chosen by the client's OS and the source endpoint the server saw.
type FlowObs struct {
	LocalPort uint16
	Observed  netaddr.Endpoint
}

// Session is the outcome of one Netalyzr-style run, the unit record of
// the paper's Netalyzr dataset.
type Session struct {
	// ASN and Cellular describe the vantage network (known to the client
	// app, as Netalyzr knows the active interface type and the
	// measurement servers know the peer AS).
	ASN      uint32
	Cellular bool

	// IPdev is the device's locally configured address.
	IPdev netaddr.Addr
	// HasCPE reports whether a UPnP gateway answered; IPcpe and CPEModel
	// are only meaningful then. The paper resolved IPcpe in ~40% of
	// non-cellular sessions.
	HasCPE   bool
	IPcpe    netaddr.Addr
	CPEModel string

	// IPpub is the public address observed by the echo server.
	IPpub netaddr.Addr
	// Flows are the sequential TCP flow observations (10 per session).
	Flows []FlowObs

	// STUNRan/STUNResult carry the mapping-type test (§6.5).
	STUNRan    bool
	STUNResult stun.Result

	// TTLRan/TTLResult carry the NAT enumeration test (§6.3, §6.4).
	TTLRan    bool
	TTLResult ttlprobe.Result
}

// ExternalIPs returns the distinct external addresses observed across the
// session's flows — more than one indicates arbitrary pooling (§6.2).
func (s Session) ExternalIPs() []netaddr.Addr {
	seen := make(map[netaddr.Addr]bool)
	var out []netaddr.Addr
	for _, f := range s.Flows {
		if !seen[f.Observed.Addr] {
			seen[f.Observed.Addr] = true
			out = append(out, f.Observed.Addr)
		}
	}
	return out
}

// Servers is the deployed measurement-server fleet.
type Servers struct {
	EchoHost *simnet.Host
	STUN     *stun.Server
	Probe    *ttlprobe.Server
	// Config echoes the deployment configuration (server addresses),
	// so world builders can enumerate the fleet's destinations.
	Config ServersConfig
	// EchoTCPCount counts flows served, for sanity checks.
	EchoTCPCount int
}

// ServersConfig places the fleet in the public realm.
type ServersConfig struct {
	EchoAddr        netaddr.Addr
	STUNPrimaryIP   netaddr.Addr
	STUNAlternateIP netaddr.Addr
	ProbeAddr       netaddr.Addr
	// AccessHops is the router distance of each server behind the public
	// fabric.
	AccessHops int
}

// DefaultServersConfig uses documentation-prefix addresses.
func DefaultServersConfig() ServersConfig {
	return ServersConfig{
		EchoAddr:        netaddr.MustParseAddr("203.0.113.10"),
		STUNPrimaryIP:   netaddr.MustParseAddr("203.0.113.11"),
		STUNAlternateIP: netaddr.MustParseAddr("203.0.113.12"),
		ProbeAddr:       netaddr.MustParseAddr("203.0.113.13"),
		AccessHops:      2,
	}
}

// DeployServers attaches the measurement fleet to the network's public
// realm.
func DeployServers(n *simnet.Network, cfg ServersConfig, rng *rand.Rand) *Servers {
	s := &Servers{Config: cfg}
	s.EchoHost = n.NewHost("echo", n.Public(), cfg.EchoAddr, cfg.AccessHops, rng)
	echo := func(from, to netaddr.Endpoint, proto netaddr.Proto, payload []byte) {
		if proto == netaddr.TCP {
			s.EchoTCPCount++
		}
		s.EchoHost.Send(proto, to.Port, from, []byte("SRC "+from.String()))
	}
	s.EchoHost.Bind(netaddr.UDP, EchoUDPPort, echo)
	s.EchoHost.Bind(netaddr.TCP, EchoTCPPort, echo)

	// STUN: two hosts (two IPs), two ports each.
	stunServer := stun.NewServer(stun.ServerConfig{
		PrimaryIP: cfg.STUNPrimaryIP, AlternateIP: cfg.STUNAlternateIP,
		PrimaryPort: STUNPrimaryPort, AlternatePort: STUNAlternatePort,
	})
	s.STUN = stunServer
	hostP := n.NewHost("stun-primary", n.Public(), cfg.STUNPrimaryIP, cfg.AccessHops, rng)
	hostA := n.NewHost("stun-alternate", n.Public(), cfg.STUNAlternateIP, cfg.AccessHops, rng)
	bindSTUN := func(h *simnet.Host, id stun.SocketID, port uint16) {
		sock := h.Open(netaddr.UDP, port)
		sock.OnRecv(func(from netaddr.Endpoint, payload []byte) {
			stunServer.HandlePacket(id, from, payload)
		})
		stunServer.BindSocket(id, sockSender{sock})
	}
	bindSTUN(hostP, stun.SocketID{AltIP: false, AltPort: false}, STUNPrimaryPort)
	bindSTUN(hostP, stun.SocketID{AltIP: false, AltPort: true}, STUNAlternatePort)
	bindSTUN(hostA, stun.SocketID{AltIP: true, AltPort: false}, STUNPrimaryPort)
	bindSTUN(hostA, stun.SocketID{AltIP: true, AltPort: true}, STUNAlternatePort)

	probeHost := n.NewHost("probe", n.Public(), cfg.ProbeAddr, cfg.AccessHops, rng)
	s.Probe = ttlprobe.NewServer(probeHost)
	return s
}

// STUNPrimary returns the primary STUN endpoint clients classify against.
func (s *Servers) STUNPrimary() netaddr.Endpoint {
	return s.STUN.Config().Endpoint(stun.SocketID{})
}

type sockSender struct{ sock *simnet.Socket }

func (ss sockSender) Send(dst netaddr.Endpoint, payload []byte) { ss.sock.Send(dst, payload) }

// ClientConfig parameterizes one session.
type ClientConfig struct {
	ASN      uint32
	Cellular bool
	// Gateway is the LAN gateway to query over UPnP; zero when the device
	// has no local gateway (cellular, or directly attached).
	Gateway netaddr.Addr
	// NumFlows is the sequential TCP flow count (default 10, as deployed).
	NumFlows int
	// RunSTUN and RunTTL toggle the heavier sub-tests, mirroring the
	// staged rollout of the real test suite (§6.3: the two tests have
	// different deployment dates and session counts).
	RunSTUN bool
	RunTTL  bool
	// TTLConfig overrides the enumeration parameters (zero = defaults).
	TTLConfig ttlprobe.Config
}

// RunSession executes the full battery from host and returns the record.
func RunSession(host *simnet.Host, servers *Servers, cfg ClientConfig) Session {
	if cfg.NumFlows == 0 {
		cfg.NumFlows = 10
	}
	sess := Session{ASN: cfg.ASN, Cellular: cfg.Cellular, IPdev: host.Addr()}

	// UPnP: ask the gateway for the CPE WAN address.
	if !cfg.Gateway.IsUnspecified() {
		sock := host.Open(netaddr.UDP, 0)
		sock.OnRecv(func(_ netaddr.Endpoint, payload []byte) {
			if info, ok := upnp.ParseResponse(payload); ok {
				sess.HasCPE = true
				sess.IPcpe = info.ExternalIP
				sess.CPEModel = info.Model
			}
		})
		sock.Send(netaddr.EndpointOf(cfg.Gateway, upnp.Port), upnp.Request())
		sock.Close()
	}

	// Port test: sequential TCP flows to the echo server's high port.
	echoEP := netaddr.EndpointOf(servers.EchoHost.Addr(), EchoTCPPort)
	for i := 0; i < cfg.NumFlows; i++ {
		local := host.EphemeralPort()
		var obs netaddr.Endpoint
		host.Bind(netaddr.TCP, local, func(_, _ netaddr.Endpoint, _ netaddr.Proto, payload []byte) {
			if ep, ok := parseSrcReply(payload); ok {
				obs = ep
			}
		})
		host.Send(netaddr.TCP, local, echoEP, []byte("ECHO"))
		host.Unbind(netaddr.TCP, local)
		if !obs.IsZero() {
			sess.Flows = append(sess.Flows, FlowObs{LocalPort: local, Observed: obs})
			sess.IPpub = obs.Addr
		}
	}

	if cfg.RunSTUN {
		rt := newSimRoundTripper(host)
		res, err := stun.Classify(rt, servers.STUNPrimary(), rand.New(rand.NewSource(int64(host.Addr()))))
		rt.Close()
		if err == nil {
			sess.STUNRan = true
			sess.STUNResult = res
		}
	}

	if cfg.RunTTL {
		tcfg := cfg.TTLConfig
		if tcfg.MaxIdle == 0 {
			tcfg = ttlprobe.DefaultConfig()
		}
		client := ttlprobe.NewClient(host, servers.Probe, tcfg)
		if res, err := client.Enumerate(); err == nil {
			sess.TTLRan = true
			sess.TTLResult = res
		}
	}
	return sess
}

func parseSrcReply(payload []byte) (netaddr.Endpoint, bool) {
	s := string(payload)
	if !strings.HasPrefix(s, "SRC ") {
		return netaddr.Endpoint{}, false
	}
	ep, err := netaddr.ParseEndpoint(strings.TrimPrefix(s, "SRC "))
	if err != nil {
		return netaddr.Endpoint{}, false
	}
	return ep, true
}

// simRoundTripper adapts a simnet socket to stun.RoundTripper. The
// simulator is synchronous, so a response (if any) has already been
// delivered when Send returns.
type simRoundTripper struct {
	sock *simnet.Socket
	last struct {
		from netaddr.Endpoint
		data []byte
		ok   bool
	}
}

func newSimRoundTripper(host *simnet.Host) *simRoundTripper {
	rt := &simRoundTripper{sock: host.Open(netaddr.UDP, 0)}
	rt.sock.OnRecv(func(from netaddr.Endpoint, payload []byte) {
		rt.last.from, rt.last.data, rt.last.ok = from, payload, true
	})
	return rt
}

func (rt *simRoundTripper) RoundTrip(dst netaddr.Endpoint, payload []byte) (netaddr.Endpoint, []byte, bool) {
	rt.last.ok = false
	rt.sock.Send(dst, payload)
	if !rt.last.ok {
		return netaddr.Endpoint{}, nil, false
	}
	return rt.last.from, rt.last.data, true
}

func (rt *simRoundTripper) LocalEndpoint() netaddr.Endpoint { return rt.sock.LocalEndpoint() }

func (rt *simRoundTripper) Close() { rt.sock.Close() }

// GatewayHost provisions a LAN-side gateway presence for a CPE: a host at
// gwAddr answering UPnP queries with the CPE's WAN address and model. The
// world generator calls this for every home network it builds.
func GatewayHost(n *simnet.Network, lan *simnet.Realm, gwAddr, wanAddr netaddr.Addr, model string, enabled bool, rng *rand.Rand) *simnet.Host {
	gw := n.NewHost(fmt.Sprintf("gw-%s", gwAddr), lan, gwAddr, 0, rng)
	resp := &upnp.Responder{
		Info:    upnp.Info{ExternalIP: wanAddr, Model: model},
		Enabled: enabled,
	}
	sock := gw.Open(netaddr.UDP, upnp.Port)
	resp.Send = func(dst netaddr.Endpoint, payload []byte) { sock.Send(dst, payload) }
	sock.OnRecv(resp.Handle)
	return gw
}
