package netalyzr

import (
	"math/rand"
	"testing"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/simnet"
	"cgn/internal/stun"
)

func addr(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

type lab struct {
	net     *simnet.Network
	servers *Servers
	// cellular device behind CGN
	cell *simnet.Host
	// NAT444 device behind CPE+CGN
	home *simnet.Host
	// device behind CPE with public WAN IP (no CGN)
	pubHome *simnet.Host
	// directly attached public host
	direct *simnet.Host
}

func buildLab(t *testing.T) *lab {
	t.Helper()
	l := &lab{net: simnet.New()}
	rng := rand.New(rand.NewSource(7))
	l.servers = DeployServers(l.net, DefaultServersConfig(), rng)
	pub := l.net.Public()

	cgnPool := []netaddr.Addr{addr("198.51.100.50"), addr("198.51.100.51")}
	isp := l.net.NewRealm("isp", 1)
	l.net.AttachNAT("cgn", isp, pub, nat.Config{
		Type:             nat.Symmetric,
		PortAlloc:        nat.Random,
		Pooling:          nat.Paired,
		ExternalIPs:      cgnPool,
		UDPTimeout:       60 * time.Second,
		RefreshOnInbound: true,
		Seed:             1,
	}, 2, 1)
	l.cell = l.net.NewHost("cell", isp, addr("100.64.0.2"), 0, rng)

	lan := l.net.NewRealm("lan-home", 0)
	l.net.AttachNAT("cpe-home", lan, isp, nat.Config{
		Type:             nat.PortRestricted,
		PortAlloc:        nat.Preservation,
		Pooling:          nat.Paired,
		ExternalIPs:      []netaddr.Addr{addr("100.64.0.100")},
		UDPTimeout:       65 * time.Second,
		RefreshOnInbound: true,
		Seed:             2,
	}, 0, 0)
	GatewayHost(l.net, lan, addr("192.168.1.1"), addr("100.64.0.100"), "AcmeBox 9000", true, rng)
	l.home = l.net.NewHost("home", lan, addr("192.168.1.2"), 0, rng)

	lanPub := l.net.NewRealm("lan-pub", 0)
	l.net.AttachNAT("cpe-pub", lanPub, pub, nat.Config{
		Type:             nat.PortRestricted,
		PortAlloc:        nat.Preservation,
		Pooling:          nat.Paired,
		ExternalIPs:      []netaddr.Addr{addr("198.51.100.7")},
		UDPTimeout:       65 * time.Second,
		RefreshOnInbound: true,
		Seed:             3,
	}, 0, 3)
	GatewayHost(l.net, lanPub, addr("192.168.1.1"), addr("198.51.100.7"), "AcmeBox 9000", true, rng)
	l.pubHome = l.net.NewHost("pubhome", lanPub, addr("192.168.1.2"), 0, rng)

	l.direct = l.net.NewHost("direct", pub, addr("203.0.113.99"), 0, rng)
	return l
}

func TestCellularSession(t *testing.T) {
	l := buildLab(t)
	sess := RunSession(l.cell, l.servers, ClientConfig{
		ASN: 65001, Cellular: true, RunSTUN: true,
	})
	if sess.IPdev != addr("100.64.0.2") {
		t.Errorf("IPdev = %v", sess.IPdev)
	}
	if sess.HasCPE {
		t.Error("cellular device must not discover a CPE")
	}
	if len(sess.Flows) != 10 {
		t.Fatalf("flows = %d, want 10", len(sess.Flows))
	}
	if sess.IPpub != addr("198.51.100.50") && sess.IPpub != addr("198.51.100.51") {
		t.Errorf("IPpub = %v, want CGN pool address", sess.IPpub)
	}
	if !sess.STUNRan || sess.STUNResult.Class != stun.ClassSymmetric {
		t.Errorf("STUN = ran=%v class=%v, want symmetric", sess.STUNRan, sess.STUNResult.Class)
	}
	// Paired pooling: one external IP across all flows.
	if got := sess.ExternalIPs(); len(got) != 1 {
		t.Errorf("external IPs = %v, want exactly one (paired pooling)", got)
	}
}

func TestNAT444Session(t *testing.T) {
	l := buildLab(t)
	sess := RunSession(l.home, l.servers, ClientConfig{
		ASN: 65001, Gateway: addr("192.168.1.1"), RunSTUN: true, RunTTL: true,
	})
	if sess.IPdev != addr("192.168.1.2") {
		t.Errorf("IPdev = %v", sess.IPdev)
	}
	if !sess.HasCPE || sess.IPcpe != addr("100.64.0.100") {
		t.Errorf("IPcpe = %v (has=%v), want the CPE's ISP-internal WAN address", sess.IPcpe, sess.HasCPE)
	}
	if sess.CPEModel != "AcmeBox 9000" {
		t.Errorf("model = %q", sess.CPEModel)
	}
	if netaddr.ClassifyRange(sess.IPpub) != netaddr.RangePublic {
		t.Errorf("IPpub = %v should be public", sess.IPpub)
	}
	// Cascade of port-restricted CPE and symmetric CGN: STUN sees the most
	// restrictive composite, i.e. symmetric.
	if !sess.STUNRan || sess.STUNResult.Class != stun.ClassSymmetric {
		t.Errorf("STUN class = %v, want symmetric", sess.STUNResult.Class)
	}
	if !sess.TTLRan {
		t.Fatal("TTL enumeration did not run")
	}
	if got := len(sess.TTLResult.NATs); got != 2 {
		t.Errorf("TTL found %d NATs, want 2 (CPE+CGN)", got)
	}
	if sess.TTLResult.MostDistantNAT() != 4 {
		t.Errorf("most distant NAT = %d, want 4", sess.TTLResult.MostDistantNAT())
	}
}

func TestPublicCPESession(t *testing.T) {
	l := buildLab(t)
	sess := RunSession(l.pubHome, l.servers, ClientConfig{
		ASN: 65002, Gateway: addr("192.168.1.1"), RunSTUN: true,
	})
	// The classic home scenario: IPcpe is public and equals IPpub.
	if !sess.HasCPE || sess.IPcpe != addr("198.51.100.7") {
		t.Errorf("IPcpe = %v", sess.IPcpe)
	}
	if sess.IPpub != sess.IPcpe {
		t.Errorf("IPpub = %v, want == IPcpe (no CGN)", sess.IPpub)
	}
	// Port preservation at the CPE: observed ports equal local ports.
	for _, f := range sess.Flows {
		if f.Observed.Port != f.LocalPort {
			t.Errorf("flow port %d translated to %d despite preservation", f.LocalPort, f.Observed.Port)
		}
	}
	if sess.STUNResult.Class != stun.ClassPortRestricted {
		t.Errorf("STUN class = %v, want port-address restricted", sess.STUNResult.Class)
	}
}

func TestDirectSession(t *testing.T) {
	l := buildLab(t)
	sess := RunSession(l.direct, l.servers, ClientConfig{ASN: 65003, RunSTUN: true})
	if sess.IPpub != sess.IPdev {
		t.Errorf("IPpub = %v, want == IPdev (no NAT)", sess.IPpub)
	}
	if sess.STUNResult.Class != stun.ClassOpen {
		t.Errorf("STUN class = %v, want open", sess.STUNResult.Class)
	}
	if sess.HasCPE {
		t.Error("direct host must not find a CPE")
	}
}

func TestSequentialLocalPorts(t *testing.T) {
	l := buildLab(t)
	sess := RunSession(l.direct, l.servers, ClientConfig{ASN: 65003})
	for i := 1; i < len(sess.Flows); i++ {
		prev, cur := sess.Flows[i-1].LocalPort, sess.Flows[i].LocalPort
		if cur != prev+1 && !(prev == simnet.EphemeralHi) {
			t.Errorf("local ports not sequential: %d then %d", prev, cur)
		}
	}
	// All local ports within the OS ephemeral range.
	for _, f := range sess.Flows {
		if f.LocalPort < simnet.EphemeralLo || f.LocalPort > simnet.EphemeralHi {
			t.Errorf("local port %d outside OS ephemeral range", f.LocalPort)
		}
	}
}

func TestEchoServerCounts(t *testing.T) {
	l := buildLab(t)
	RunSession(l.direct, l.servers, ClientConfig{ASN: 65003})
	if l.servers.EchoTCPCount != 10 {
		t.Errorf("echo server saw %d TCP flows, want 10", l.servers.EchoTCPCount)
	}
}

func TestUPnPDisabledGateway(t *testing.T) {
	l := buildLab(t)
	rng := rand.New(rand.NewSource(9))
	lan := l.net.NewRealm("lan-noupnp", 0)
	l.net.AttachNAT("cpe-noupnp", lan, l.net.Public(), nat.Config{
		Type: nat.PortRestricted, PortAlloc: nat.Preservation, Pooling: nat.Paired,
		ExternalIPs: []netaddr.Addr{addr("198.51.100.8")},
		Seed:        4,
	}, 0, 3)
	GatewayHost(l.net, lan, addr("192.168.1.1"), addr("198.51.100.8"), "SilentBox", false, rng)
	dev := l.net.NewHost("noupnp", lan, addr("192.168.1.2"), 0, rng)

	sess := RunSession(dev, l.servers, ClientConfig{ASN: 65004, Gateway: addr("192.168.1.1")})
	if sess.HasCPE {
		t.Error("disabled UPnP responder must leave HasCPE false")
	}
	if sess.IPpub != addr("198.51.100.8") {
		t.Errorf("IPpub = %v", sess.IPpub)
	}
}

func TestExternalIPsDedup(t *testing.T) {
	s := Session{Flows: []FlowObs{
		{Observed: netaddr.MustParseEndpoint("1.1.1.1:10")},
		{Observed: netaddr.MustParseEndpoint("1.1.1.1:11")},
		{Observed: netaddr.MustParseEndpoint("2.2.2.2:12")},
	}}
	got := s.ExternalIPs()
	if len(got) != 2 || got[0] != addr("1.1.1.1") || got[1] != addr("2.2.2.2") {
		t.Errorf("ExternalIPs = %v", got)
	}
}
