package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe output sink for driving run()
// concurrently with assertions on what it printed.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func baseArgs() []string {
	return []string{
		"-carriers", "4", "-subscribers", "20", "-days", "8",
		"-day-ticks", "48", "-seed", "5",
	}
}

// TestResumeMatchesUninterrupted is the daemon-level determinism smoke:
// an uninterrupted reference run, then a run stopped after three days
// (checkpointing on its cadence) and resumed by a second process
// incarnation — with different worker and shard counts — must produce a
// byte-identical digests file.
func TestResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.txt")
	var out syncBuffer
	ref := append(baseArgs(), "-workers", "2", "-shards", "2", "-digests", refPath)
	if err := run(ref, &out); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out.String())
	}

	ck := filepath.Join(dir, "fleet.ckpt")
	interrupted := append(baseArgs(), "-workers", "3", "-shards", "1",
		"-checkpoint", ck, "-checkpoint-every", "2", "-stop-after-days", "3")
	if err := run(interrupted, &out); err != nil {
		t.Fatalf("interrupted run: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint after stop: %v", err)
	}

	gotPath := filepath.Join(dir, "got.txt")
	resumed := append(baseArgs(), "-workers", "1", "-shards", "3",
		"-checkpoint", ck, "-resume", "-digests", gotPath)
	if err := run(resumed, &out); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, out.String())
	}

	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed digests differ from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s", want, got)
	}
	if !strings.Contains(string(want), "digest=sha256:") {
		t.Fatalf("digests carry no state fingerprints:\n%s", want)
	}
}

// waitForAddr polls the daemon's output until it announces its bound
// listener address.
func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its listener:\n%s", out.String())
		}
		if s := out.String(); strings.Contains(s, "listening on http://") {
			s = s[strings.Index(s, "listening on http://")+len("listening on http://"):]
			return strings.TrimSpace(s[:strings.IndexAny(s, " \n")])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sigterm terminates a daemon started in a goroutine and waits for its
// run() to return cleanly.
func sigterm(t *testing.T, done <-chan error) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}

// TestPprofEndpoints is the -pprof smoke: with the flag, the profiling
// surface under /debug/pprof/ must serve (index, cmdline, and a short
// CPU profile — seconds=1, since the handler treats an absent/zero
// seconds as its 30s default); without the flag it must stay unmounted.
func TestPprofEndpoints(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	args := append(baseArgs(), "-days", "100000", "-throttle", "25ms",
		"-listen", "127.0.0.1:0", "-pprof")
	go func() { done <- run(args, &out) }()
	addr := waitForAddr(t, &out)

	status := func(path string) int {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/profile?seconds=1",
	} {
		if code := status(path); code != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, code)
		}
	}
	if !strings.Contains(out.String(), "/debug/pprof") {
		t.Errorf("listener line does not advertise pprof:\n%s", out.String())
	}
	sigterm(t, done)

	// Same daemon without -pprof: the profiling surface must 404.
	out = syncBuffer{}
	done = make(chan error, 1)
	args = append(baseArgs(), "-days", "100000", "-throttle", "25ms",
		"-listen", "127.0.0.1:0")
	go func() { done <- run(args, &out) }()
	addr = waitForAddr(t, &out)
	if code := status("/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("GET /debug/pprof/ without -pprof: status %d, want 404", code)
	}
	sigterm(t, done)
}

// TestServesMetricsWhileRunning drives the daemon with a throttled day
// loop, scrapes /metrics, /status and /healthz while it advances, then
// terminates it with SIGTERM and checks it checkpointed on the way out.
func TestServesMetricsWhileRunning(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "fleet.ckpt")
	var out syncBuffer
	done := make(chan error, 1)
	args := append(baseArgs(), "-days", "100000", "-throttle", "25ms",
		"-listen", "127.0.0.1:0", "-checkpoint", ck)
	go func() { done <- run(args, &out) }()

	// The daemon prints the bound address once the listener is up.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its listener:\n%s", out.String())
		}
		if s := out.String(); strings.Contains(s, "listening on http://") {
			s = s[strings.Index(s, "listening on http://")+len("listening on http://"):]
			addr = strings.TrimSpace(s[:strings.IndexAny(s, " \n")])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		return string(body)
	}

	if !strings.Contains(get("/healthz"), "ok") {
		t.Error("healthz not ok")
	}
	// Scrape until the simulation has visibly advanced: the created
	// counter is non-zero once the first virtual day completes.
	var metrics string
	for {
		if time.Now().After(deadline) {
			t.Fatalf("metrics never showed progress:\n%s", metrics)
		}
		metrics = get("/metrics")
		if strings.Contains(metrics, "cgnsimd_mappings_created_total{") &&
			!strings.Contains(metrics, "cgnsimd_virtual_day 0") {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, want := range []string{
		"cgnsimd_port_utilization{realm=",
		"cgnsimd_allocation_failures_total{realm=",
		"cgnsimd_carrier_cgn_enabled{realm=",
		"cgnsimd_checkpoint_age_seconds",
		"cgnsimd_resumed 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("missing metrics series %q", want)
		}
	}
	status := get("/status")
	if !strings.Contains(status, "virtual day") || !strings.Contains(status, "carrier00") {
		t.Errorf("status page incomplete:\n%s", status)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
	if !strings.Contains(out.String(), "state checkpointed") {
		t.Errorf("no checkpoint-on-signal message:\n%s", out.String())
	}
	if _, err := os.Stat(ck); err != nil {
		t.Errorf("no checkpoint file after SIGTERM: %v", err)
	}
}
