package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"cgn/internal/fleet"
)

// newMux builds the daemon's observability surface. Handlers read the
// atomically published snapshot and never touch the simulation, so
// serving stays safe and wait-free while the day loop runs.
//
// withPprof additionally mounts the net/http/pprof handlers under
// /debug/pprof/ — explicit registrations on this private mux rather
// than the package's http.DefaultServeMux side effect, so profiling is
// opt-in per process (-pprof) and the default surface stays minimal.
func newMux(st *obs, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Liveness vs readiness: /livez answers 200 whenever the process can
	// serve at all (restarting it would not help), while /healthz turns
	// 503 when the simulated world or the durability machinery is
	// degraded — pool lanes dark to a fault, the last checkpoint write
	// failed, or the newest checkpoint is older than
	// -checkpoint-stale-after.
	mux.HandleFunc("/livez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var reasons []string
		if m := &st.view.Load().m; m.LanesDown > 0 {
			reasons = append(reasons, fmt.Sprintf("%d pool lane(s) down", m.LanesDown))
		}
		if st.lastCkFailed.Load() {
			reasons = append(reasons, "last checkpoint write failed")
		}
		if st.staleAfter > 0 {
			if last := st.lastCkUnix.Load(); last > 0 {
				if age := time.Since(time.Unix(last, 0)); age > st.staleAfter {
					reasons = append(reasons, fmt.Sprintf("checkpoint %s old exceeds %s", age.Round(time.Second), st.staleAfter))
				}
			}
		}
		if len(reasons) > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "degraded: %s\n", strings.Join(reasons, "; "))
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		v := st.view.Load()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fleet.WritePrometheus(w, v.m)
		// Daemon-level series the fleet snapshot cannot know: checkpoint
		// recency (wall clock — this is operational, not virtual, time)
		// and whether this process restored from a checkpoint.
		fmt.Fprintf(w, "# HELP cgnsimd_checkpoint_writes_total Checkpoints written by this process.\n# TYPE cgnsimd_checkpoint_writes_total counter\n")
		fmt.Fprintf(w, "cgnsimd_checkpoint_writes_total %d\n", st.ckWrites.Load())
		fmt.Fprintf(w, "# HELP cgnsimd_checkpoint_age_seconds Wall seconds since the last checkpoint write (-1 before the first).\n# TYPE cgnsimd_checkpoint_age_seconds gauge\n")
		if last := st.lastCkUnix.Load(); last > 0 {
			fmt.Fprintf(w, "cgnsimd_checkpoint_age_seconds %d\n", int64(time.Since(time.Unix(last, 0)).Seconds()))
		} else {
			fmt.Fprintf(w, "cgnsimd_checkpoint_age_seconds -1\n")
		}
		fmt.Fprintf(w, "# HELP cgnsimd_checkpoint_retries_total Checkpoint write re-attempts after a failed attempt.\n# TYPE cgnsimd_checkpoint_retries_total counter\n")
		fmt.Fprintf(w, "cgnsimd_checkpoint_retries_total %d\n", st.ckRetries.Load())
		fmt.Fprintf(w, "# HELP cgnsimd_checkpoint_write_failures_total Failed checkpoint write attempts (injected or real).\n# TYPE cgnsimd_checkpoint_write_failures_total counter\n")
		fmt.Fprintf(w, "cgnsimd_checkpoint_write_failures_total %d\n", st.ckFailures.Load())
		fmt.Fprintf(w, "# HELP cgnsimd_resumed Whether this process restored from a checkpoint.\n# TYPE cgnsimd_resumed gauge\n")
		resumed := 0
		if st.resumed {
			resumed = 1
		}
		fmt.Fprintf(w, "cgnsimd_resumed %d\n", resumed)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		v := st.view.Load()
		m := &v.m
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "cgnsimd — longitudinal CGN fleet simulation\n\n")
		fmt.Fprintf(w, "virtual day     %d / %d (%d ticks/day)\n", m.Day, m.Days, m.TicksPerDay)
		fmt.Fprintf(w, "carriers        %d (%d running CGN)\n", m.Carriers, m.ActiveCGN)
		fmt.Fprintf(w, "subscribers     %d\n", m.Subscribers)
		fmt.Fprintf(w, "timeline events %d applied\n", m.EventsApplied)
		fmt.Fprintf(w, "mappings        %d created, %d expired, %d refreshes, %d allocation failures\n\n", m.Created, m.Expired, m.Refreshes, m.Failures)
		fmt.Fprintf(w, "%-12s %-4s %-9s %7s %9s %7s %12s %10s\n", "realm", "cgn", "subs", "live", "in-use", "util", "created", "failures")
		for i := range m.Realms {
			r := &m.Realms[i]
			state := "off"
			if r.Enabled {
				state = "on"
			}
			fmt.Fprintf(w, "%-12s %-4s %-9d %7d %9d %6.1f%% %12d %10d\n",
				r.ID, state, r.Subscribers, r.Live, r.InUse, 100*r.Util, r.Created, r.Failures)
		}
	})
	return mux
}
