package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cgn/internal/fleet"
)

// TestLivezHealthzSplit unit-tests the liveness/readiness split against
// crafted daemon states: /livez answers 200 in every one of them, while
// /healthz turns 503 — naming the reason — for dark pool lanes, a
// failed checkpoint write, and a stale checkpoint.
func TestLivezHealthzSplit(t *testing.T) {
	st := &obs{staleAfter: time.Hour}
	st.view.Store(&obsView{})
	srv := httptest.NewServer(newMux(st, false))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	expect := func(wantCode int, wantBody string) {
		t.Helper()
		if code, body := get("/healthz"); code != wantCode || !strings.Contains(body, wantBody) {
			t.Errorf("/healthz = %d %q, want %d containing %q", code, body, wantCode, wantBody)
		}
		if code, body := get("/livez"); code != http.StatusOK || !strings.Contains(body, "ok") {
			t.Errorf("/livez = %d %q, want 200 ok", code, body)
		}
	}

	expect(http.StatusOK, "ok")

	st.view.Store(&obsView{m: fleet.MetricsSnapshot{LanesDown: 2}})
	expect(http.StatusServiceUnavailable, "2 pool lane(s) down")
	st.view.Store(&obsView{})

	st.lastCkFailed.Store(true)
	expect(http.StatusServiceUnavailable, "last checkpoint write failed")
	st.lastCkFailed.Store(false)

	st.lastCkUnix.Store(time.Now().Add(-2 * time.Hour).Unix())
	expect(http.StatusServiceUnavailable, "exceeds 1h0m0s")
	st.lastCkUnix.Store(time.Now().Unix())
	expect(http.StatusOK, "ok")
}

// TestCheckpointFailureDegradesDaemon is the fault-drill integration
// smoke: with every checkpoint write injected to fail, the daemon keeps
// running and serving (alive), reports degraded readiness, and counts
// retries and failures on /metrics. The terminal SIGTERM checkpoint
// fails hard — exiting without durable state is an error by contract.
func TestCheckpointFailureDegradesDaemon(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "fleet.ckpt")
	var out syncBuffer
	done := make(chan error, 1)
	args := append(baseArgs(), "-days", "100000", "-throttle", "25ms",
		"-listen", "127.0.0.1:0", "-checkpoint", ck, "-checkpoint-every", "1",
		"-fault-checkpoint-fail", "1")
	go func() { done <- run(args, &out) }()
	addr := waitForAddr(t, &out)

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never degraded on checkpoint failure:\n%s", out.String())
		}
		if code, body := get("/healthz"); code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "last checkpoint write failed") {
				t.Fatalf("degraded for the wrong reason: %q", body)
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, _ := get("/livez"); code != http.StatusOK {
		t.Errorf("/livez = %d while degraded, want 200", code)
	}
	_, metrics := get("/metrics")
	for _, want := range []string{"cgnsimd_checkpoint_retries_total", "cgnsimd_checkpoint_write_failures_total"} {
		if !strings.Contains(metrics, want+" ") || strings.Contains(metrics, want+" 0\n") {
			t.Errorf("metrics lack a nonzero %s:\n%s", want, metrics)
		}
	}
	if _, err := os.Stat(ck); err == nil {
		t.Error("a checkpoint file appeared despite certain injected failure")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "checkpoint on") {
			t.Fatalf("terminal checkpoint failure not surfaced: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}

// TestFaultedResumeMatchesUninterrupted extends the daemon determinism
// smoke to an active fault schedule: a -faults run stopped mid-horizon
// (its cuts landing around lane outages and restarts) and resumed at
// different worker/shard counts produces a digests file byte-identical
// to the uninterrupted faulted reference.
func TestFaultedResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	faulted := func(extra ...string) []string {
		return append(append(baseArgs(), "-faults", "1", "-shards", "2"), extra...)
	}
	refPath := filepath.Join(dir, "ref.txt")
	var out syncBuffer
	if err := run(faulted("-workers", "2", "-digests", refPath), &out); err != nil {
		t.Fatalf("faulted reference run: %v\n%s", err, out.String())
	}

	ck := filepath.Join(dir, "fleet.ckpt")
	if err := run(faulted("-workers", "3", "-checkpoint", ck, "-checkpoint-every", "1",
		"-stop-after-days", "3"), &out); err != nil {
		t.Fatalf("interrupted faulted run: %v\n%s", err, out.String())
	}
	gotPath := filepath.Join(dir, "got.txt")
	resumed := append(baseArgs(), "-faults", "1", "-shards", "3", "-workers", "1",
		"-checkpoint", ck, "-resume", "-digests", gotPath)
	if err := run(resumed, &out); err != nil {
		t.Fatalf("resumed faulted run: %v\n%s", err, out.String())
	}

	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("faulted resume diverged from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s", want, got)
	}

	// Dropping -faults on resume must be refused — the schedule is part
	// of the config signature, not an execution detail.
	mismatched := append(baseArgs(), "-shards", "1", "-checkpoint", ck, "-resume")
	if err := run(mismatched, &out); err == nil || !strings.Contains(err.Error(), "signature") {
		t.Fatalf("resume without -faults accepted: %v", err)
	}
}
