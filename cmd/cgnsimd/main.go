// Command cgnsimd is the longitudinal fleet daemon: it drives months of
// virtual time over an evolving carrier fleet (internal/fleet) as a
// long-lived process, checkpointing its complete state atomically on a
// virtual-time cadence and on SIGTERM, and serving live observability —
// Prometheus text-exposition metrics and a status page — while the
// simulation advances.
//
// The contract that makes it a daemon worth killing: a run interrupted
// at any checkpoint and restarted with -resume continues byte-identically
// — the final per-realm NAT state digests and the E21 detection scores
// match an uninterrupted run exactly, whatever -workers or -shards (>= 1)
// values either process used.
//
//	cgnsimd -days 90 -carriers 8 -subscribers 200 \
//	        -checkpoint fleet.ckpt -checkpoint-every 7 \
//	        -listen 127.0.0.1:9400 -digests digests.txt
//	# ... kill -TERM it mid-run, then:
//	cgnsimd -days 90 -carriers 8 -subscribers 200 \
//	        -checkpoint fleet.ckpt -resume -digests digests.txt
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"cgn/internal/fleet"
	"cgn/internal/nat"
	"cgn/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cgnsimd:", err)
		os.Exit(1)
	}
}

// obs is the daemon's shared observability state: the day loop stores a
// fresh view after every virtual day, HTTP handlers load it lock-free.
type obs struct {
	view atomic.Pointer[obsView]
	// ckWrites and lastCkUnix feed the checkpoint-age metrics.
	ckWrites   atomic.Uint64
	lastCkUnix atomic.Int64
	// ckRetries counts checkpoint write re-attempts, ckFailures failed
	// write attempts (injected or real); lastCkFailed marks a save whose
	// every attempt failed — a degraded state /healthz surfaces until
	// the next save lands.
	ckRetries    atomic.Uint64
	ckFailures   atomic.Uint64
	lastCkFailed atomic.Bool
	resumed      bool
	// staleAfter is the -checkpoint-stale-after readiness threshold
	// (zero disables the check).
	staleAfter time.Duration
}

type obsView struct {
	m fleet.MetricsSnapshot
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cgnsimd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		carriers    = fs.Int("carriers", 8, "synthetic fleet size")
		subscribers = fs.Int("subscribers", 100, "initial subscribers per carrier")
		days        = fs.Int("days", 90, "virtual horizon in days")
		seed        = fs.Int64("seed", 1, "master seed (fleet, timeline, traffic, observation)")
		workers     = fs.Int("workers", 0, "realm worker pool size (0 = sequential; never affects results)")
		shards      = fs.Int("shards", 0, "per-realm NAT shards (0 = legacy engine; any value >= 1 is the sharded engine and gives identical results)")
		dayTicks    = fs.Int("day-ticks", 288, "virtual ticks per day")
		ckPath      = fs.String("checkpoint", "", "checkpoint file path (enables checkpointing)")
		ckEvery     = fs.Int("checkpoint-every", 7, "checkpoint cadence in virtual days")
		ckKeep      = fs.Int("checkpoint-keep", 3, "checkpoint generations to retain (path, path.1, ...); resume scans back to the newest that validates")
		ckStale     = fs.Duration("checkpoint-stale-after", 0, "report degraded on /healthz when the last checkpoint write is older than this (0 disables)")
		resume      = fs.Bool("resume", false, "restore state from the newest valid -checkpoint generation and continue")
		faults      = fs.Float64("faults", 0, "fault-schedule severity in [0,1]: pool-lane outages and engine restarts scripted over the run (requires -shards >= 1)")
		ckFailProb  = fs.Float64("fault-checkpoint-fail", 0, "inject checkpoint write failures with this probability per attempt, exercising the retry path (a fault drill; deterministic in -seed)")
		listen      = fs.String("listen", "", "serve /metrics, /status and /healthz on this address (e.g. 127.0.0.1:9400)")
		digests     = fs.String("digests", "", "write final per-realm state digests and E21 scores to this file")
		pprofOn     = fs.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/ on the -listen mux")
		allocRate   = fs.Float64("alloc-rate", 0, "arm a per-subscriber allocation token bucket on every carrier (tokens/sec; 0 leaves the fleet undefended)")
		allocBurst  = fs.Int("alloc-burst", 0, "token-bucket burst capacity (0 = engine default; only meaningful with -alloc-rate)")
		evict       = fs.String("evict", "", "eviction policy on every carrier: none or oldest-idle (empty keeps the default refuse behavior)")
		throttle    = fs.Duration("throttle", 0, "wall-clock sleep per virtual day (keeps a demo or smoke-test run observable)")
		stopAfter   = fs.Int("stop-after-days", 0, "checkpoint and exit after this many virtual days of this process's run (0 = run to the horizon); an operations/test hook equivalent to a well-timed SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs := fleet.SyntheticFleet(*seed, *carriers, *subscribers)
	// Defense knobs apply fleet-wide. They are part of the checkpoint's
	// config signature, so a -resume must repeat them — armoring half a
	// run would silently fork the determinism contract otherwise.
	var evictPolicy nat.EvictionPolicy
	switch *evict {
	case "", "none":
		evictPolicy = nat.EvictNone
	case "oldest-idle":
		evictPolicy = nat.EvictOldestIdle
	default:
		return fmt.Errorf("-evict %q: want none or oldest-idle", *evict)
	}
	for i := range specs {
		if *allocRate > 0 {
			specs[i].NAT.AllocRatePerSec = *allocRate
			specs[i].NAT.AllocBurst = *allocBurst
		}
		if *evict != "" {
			specs[i].NAT.Eviction = evictPolicy
		}
	}
	if *faults < 0 || *faults > 1 {
		return fmt.Errorf("-faults %v: want a severity in [0,1]", *faults)
	}
	if *faults > 0 && *shards < 1 {
		return fmt.Errorf("-faults requires -shards >= 1: the pool lane is the outage's unit")
	}
	if *ckFailProb < 0 || *ckFailProb > 1 {
		return fmt.Errorf("-fault-checkpoint-fail %v: want a probability in [0,1]", *ckFailProb)
	}
	timeline := fleet.ScriptTimeline(*seed, specs, *days)
	if *faults > 0 {
		// The fault schedule is part of the timeline, hence of the
		// checkpoint's config signature: a -resume must repeat -faults.
		timeline.Events = append(timeline.Events, fleet.ScriptFaults(*seed, specs, *days, *faults).Events...)
	}
	cfg := fleet.Config{
		Seed:     *seed,
		Days:     *days,
		Profile:  traffic.Profile{DayTicks: *dayTicks},
		Carriers: specs,
		Timeline: timeline,
		Workers:  *workers,
		Shards:   *shards,
	}

	var sim *fleet.Sim
	var err error
	if *resume {
		if *ckPath == "" {
			return fmt.Errorf("-resume needs -checkpoint")
		}
		ck, gen, err := fleet.LoadCheckpointNewest(*ckPath)
		if err != nil {
			return err
		}
		sim, err = fleet.Resume(cfg, ck)
		if err != nil {
			return err
		}
		if gen > 0 {
			fmt.Fprintf(stdout, "resumed from %s (fell back %d generation(s)) at virtual day %d/%d\n", *ckPath, gen, sim.Day(), *days)
		} else {
			fmt.Fprintf(stdout, "resumed from %s at virtual day %d/%d\n", *ckPath, sim.Day(), *days)
		}
	} else {
		sim, err = fleet.New(cfg)
		if err != nil {
			return err
		}
	}

	st := &obs{resumed: *resume, staleAfter: *ckStale}
	st.view.Store(&obsView{m: sim.Metrics()})

	// Register the signal handler before the HTTP listener goes up: the
	// moment the daemon is observable from outside it must already be
	// killable without state loss.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		surface := "/metrics /status /healthz /livez"
		if *pprofOn {
			surface += " /debug/pprof"
		}
		fmt.Fprintf(stdout, "listening on http://%s (%s)\n", ln.Addr(), surface)
		srv := &http.Server{Handler: newMux(st, *pprofOn)}
		go srv.Serve(ln)
		defer srv.Close()
	}

	checkpoint := func() error {
		if *ckPath == "" {
			return nil
		}
		out, err := fleet.SaveCheckpointRetry(*ckPath, sim.Checkpoint(), fleet.RetryPolicy{
			Keep:        *ckKeep,
			MaxAttempts: 4,
			BackoffBase: 250 * time.Millisecond,
			Seed:        *seed,
			Key:         uint64(sim.Day()),
			FailProb:    *ckFailProb,
		})
		st.ckRetries.Add(uint64(out.Retries))
		failed := uint64(out.Retries)
		if err != nil {
			failed++
		}
		st.ckFailures.Add(failed)
		st.lastCkFailed.Store(err != nil)
		if err != nil {
			return err
		}
		st.ckWrites.Add(1)
		st.lastCkUnix.Store(time.Now().Unix())
		return nil
	}

	startDay := sim.Day()
	for !sim.Done() {
		select {
		case sig := <-sigc:
			if err := checkpoint(); err != nil {
				return fmt.Errorf("checkpoint on %v: %w", sig, err)
			}
			fmt.Fprintf(stdout, "%v at virtual day %d/%d: state checkpointed, exiting\n", sig, sim.Day(), *days)
			return nil
		default:
		}
		sim.StepDay()
		st.view.Store(&obsView{m: sim.Metrics()})
		if *ckEvery > 0 && sim.Day()%*ckEvery == 0 && !sim.Done() {
			// A failed cadence write degrades the daemon (/healthz turns
			// non-200, the failure counters tick) but does not kill the
			// run — the next cadence retries from scratch. Terminal
			// checkpoints (signal, -stop-after-days, horizon) still fail
			// hard: exiting without durable state is worse than exiting
			// nonzero.
			if err := checkpoint(); err != nil {
				fmt.Fprintf(stdout, "checkpoint at virtual day %d failed (degraded; next cadence retries): %v\n", sim.Day(), err)
			}
		}
		if *stopAfter > 0 && sim.Day()-startDay >= *stopAfter && !sim.Done() {
			if err := checkpoint(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "stopping after %d days at virtual day %d/%d: state checkpointed\n", *stopAfter, sim.Day(), *days)
			return nil
		}
		if *throttle > 0 {
			time.Sleep(*throttle)
		}
	}
	// Final checkpoint: a later -resume of a finished run is a no-op
	// that still reproduces the result.
	if err := checkpoint(); err != nil {
		return err
	}

	res := sim.Result()
	fmt.Fprintf(stdout, "fleet run complete: %d virtual days, %d carriers, %d subscribers, %d events, %d mappings created\n",
		res.Days, res.Carriers, res.SubscribersEnd, res.EventsApplied, res.Created)
	if *digests != "" {
		if err := writeDigests(*digests, res); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "digests written to %s\n", *digests)
	}
	return nil
}

// writeDigests renders the determinism witness: per-realm engine state
// digests and the E21 window scores, in a stable text format two runs
// can be diffed by.
func writeDigests(path string, res *fleet.Result) error {
	var b []byte
	app := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	app("cgnsimd digests days=%d carriers=%d events=%d\n", res.Days, res.Carriers, res.EventsApplied)
	for _, r := range res.Realms {
		app("realm %s enabled=%v subs=%d created=%d expired=%d failures=%d digest=%s\n",
			r.ID, r.EnabledEnd, r.Subscribers, r.Created, r.Expired, r.Failures, shortDigest(r.Digest))
	}
	for _, w := range res.Windows {
		app("window days=%d threshold=%d tp=%d fp=%d fn=%d tn=%d precision=%.6f recall=%.6f f1=%.6f\n",
			w.Days, w.Threshold, w.TP, w.FP, w.FN, w.TN, w.Precision, w.Recall, w.F1)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// shortDigest collapses a multi-line state digest to a stable one-line
// fingerprint (the digest text itself can run to megabytes).
func shortDigest(d string) string {
	if d == "disabled" {
		return d
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256([]byte(d)))
}
