// Command cgnsim is the end-to-end reproduction driver: it generates a
// synthetic Internet with ground-truth CGN deployments, runs the
// BitTorrent DHT crawl and the Netalyzr measurement campaign against it,
// executes both detection pipelines and every property analysis, and
// prints all of the paper's tables and figures (E01..E16) plus the
// ground-truth scoring.
//
// Usage:
//
//	cgnsim [-scenario paper|small] [-seed N] [-experiment E08] [-truth]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cgn/internal/internet"
	"cgn/internal/report"
)

func main() {
	scenario := flag.String("scenario", "paper", "world size: paper, small or large")
	seed := flag.Int64("seed", 1, "world generation seed")
	experiment := flag.String("experiment", "", "render a single experiment (e.g. E08); empty renders all")
	truth := flag.Bool("truth", false, "also dump per-AS ground truth")
	flag.Parse()

	var sc internet.Scenario
	switch *scenario {
	case "paper":
		sc = internet.Paper()
	case "small":
		sc = internet.Small()
	case "large":
		sc = internet.Large()
	default:
		fmt.Fprintf(os.Stderr, "cgnsim: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	sc.Seed = *seed

	w := internet.Build(sc)
	fmt.Printf("world: %d ASes, %d BitTorrent peers, %d Netalyzr vantage points, %d true CGN ASes\n\n",
		w.DB.Len(), len(w.Swarm.Peers), w.NumClients(), len(w.CGNTruth()))

	b := report.Collect(w)
	if *experiment == "" {
		fmt.Println(b.All())
	} else {
		out, err := renderOne(b, strings.ToUpper(*experiment))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cgnsim: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(out)
	}

	if *truth {
		fmt.Println("Ground truth:")
		for asn, t := range w.Truth {
			if t.CGN {
				fmt.Printf("  AS%d cellular=%v realms=%d ranges=%v allocs=%v types=%v timeouts=%v\n",
					asn, t.Cellular, t.Realms, t.Ranges, t.PortAllocs, t.MappingTypes, t.Timeouts)
			}
		}
	}
}

func renderOne(b *report.Bundle, name string) (string, error) {
	renderers := map[string]func() string{
		"E01": b.E01, "E02": b.E02, "E03": b.E03, "E04": b.E04,
		"E05": b.E05, "E06": b.E06, "E07": b.E07, "E08": b.E08,
		"E09": b.E09, "E10": b.E10, "E11": b.E11, "E12": b.E12,
		"E13": b.E13, "E14": b.E14, "E15": b.E15, "E16": b.E16,
		"SCORES": b.Scores,
	}
	fn, ok := renderers[name]
	if !ok {
		return "", fmt.Errorf("unknown experiment %q (E01..E16 or scores)", name)
	}
	return fn(), nil
}
