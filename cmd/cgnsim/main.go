// Command cgnsim is the end-to-end reproduction driver: it generates a
// synthetic Internet with ground-truth CGN deployments, runs the
// BitTorrent DHT crawl and the Netalyzr measurement campaign against it,
// executes both detection pipelines and every property analysis, and
// prints all of the paper's tables and figures (E01..E18, plus the
// adversarial E19, the longitudinal E21 and the fault-injection E22)
// and the ground-truth scoring.
//
// Usage:
//
//	cgnsim [-scenario paper|small|large|...] [-seed N] [-experiment E08] [-truth]
//
// Sweep mode runs the campaign over a grid of scenarios and replicate
// seeds on a worker pool and aggregates the ground-truth scores into
// precision/recall distributions with confidence intervals:
//
//	cgnsim -sweep [-scenarios small,nat444-dense] [-replicates 8] [-workers 4] [-seed N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"cgn/internal/campaign"
	"cgn/internal/internet"
	"cgn/internal/nat"
	"cgn/internal/report"
)

func main() {
	scenario := flag.String("scenario", "paper", "world scenario: "+strings.Join(internet.Names(), ", "))
	seed := flag.Int64("seed", 1, "world generation seed (sweep mode: base seed of the replicates)")
	experiment := flag.String("experiment", "", "render a single experiment (e.g. E08); empty renders all")
	truth := flag.Bool("truth", false, "also dump per-AS ground truth")
	portSpan := flag.Int("portspan", 0, "narrow every CGN realm to this many external ports (0 keeps the scenario's setting)")
	portQuota := flag.Int("portquota", 0, "per-subscriber CGN port quota (0 keeps the scenario's setting)")
	trafficWorkers := flag.Int("traffic-workers", 0, "traffic-engine (E18) realm worker pool; 0 or 1 replays realms sequentially (results are byte-identical at any value)")
	trafficShards := flag.Int("traffic-shards", 0, "traffic-engine (E18) NAT shards per realm; 0 keeps the legacy engine, >=1 uses the intra-realm sharded engine (identical at any shard count, distinct universe from 0)")
	attackFrac := flag.Float64("attackers", -1, "E19 override: fraction of subscribers acting as port-flood attackers (negative keeps the scenario's setting)")
	attackFlows := flag.Float64("attack-flows", -1, "E19 override: flood flows per attacker per tick (negative keeps the scenario's setting)")
	scanProbes := flag.Float64("scan-probes", -1, "E19 override: external scanner probes per pool IP per tick (negative keeps the scenario's setting)")
	allocRate := flag.Float64("alloc-rate", -1, "defense override: per-subscriber allocation token-bucket rate in tokens/sec (negative keeps the scenario's setting, 0 disarms)")
	allocBurst := flag.Int("alloc-burst", -1, "defense override: token-bucket burst capacity (negative keeps the scenario's setting)")
	evict := flag.String("evict", "", "defense override: CGN eviction policy, none or oldest-idle (empty keeps the scenario's setting)")
	sweep := flag.Bool("sweep", false, "run a multi-world sweep instead of a single campaign")
	scenarios := flag.String("scenarios", "small", "sweep mode: comma-separated scenario names")
	replicates := flag.Int("replicates", 8, "sweep mode: replicate worlds (seeds) per scenario")
	workers := flag.Int("workers", runtime.NumCPU(), "sweep mode: concurrent worlds")
	verbose := flag.Bool("v", false, "sweep mode: print per-world results as they finish")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	flag.Parse()

	// Profiles must be flushed on every exit path (including the
	// os.Exit below), so stopping is explicit rather than deferred.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cgnsim: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cgnsim: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
	}
	stopProfiles := func() {
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cgnsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "cgnsim: -memprofile: %v\n", err)
			}
		}
	}

	if *sweep {
		code := runSweep(*scenarios, *replicates, *workers, *seed, *portSpan, *portQuota, *trafficWorkers, *trafficShards, *verbose)
		stopProfiles()
		os.Exit(code)
	}
	defer stopProfiles()

	sc, err := internet.Lookup(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cgnsim: %v\n", err)
		stopProfiles()
		os.Exit(2)
	}
	sc.Seed = *seed
	sc.ApplyPortOverrides(*portSpan, *portQuota)
	if *attackFrac >= 0 {
		sc.Traffic.AttackerFrac = *attackFrac
	}
	if *attackFlows >= 0 {
		sc.Traffic.AttackerFlowsPerTick = *attackFlows
	}
	if *scanProbes >= 0 {
		sc.Traffic.ScannerProbesPerTick = *scanProbes
	}
	if *allocRate >= 0 {
		sc.CGNAllocRatePerSec = *allocRate
	}
	if *allocBurst >= 0 {
		sc.CGNAllocBurst = *allocBurst
	}
	switch *evict {
	case "":
	case "none":
		sc.CGNEviction = nat.EvictNone
	case "oldest-idle":
		sc.CGNEviction = nat.EvictOldestIdle
	default:
		fmt.Fprintf(os.Stderr, "cgnsim: -evict %q: want none or oldest-idle\n", *evict)
		stopProfiles()
		os.Exit(2)
	}
	if err := sc.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "cgnsim: %v\n", err)
		stopProfiles()
		os.Exit(2)
	}

	w := internet.Build(sc)
	fmt.Printf("world: %d ASes, %d BitTorrent peers, %d Netalyzr vantage points, %d true CGN ASes\n\n",
		w.DB.Len(), len(w.Swarm.Peers), w.NumClients(), len(w.CGNTruth()))

	b := report.CollectWith(w, report.CollectOptions{
		TrafficWorkers: *trafficWorkers,
		TrafficShards:  *trafficShards,
	})
	if *experiment == "" {
		fmt.Println(b.All())
	} else {
		out, err := renderOne(b, strings.ToUpper(*experiment))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cgnsim: %v\n", err)
			stopProfiles()
			os.Exit(2)
		}
		fmt.Println(out)
	}

	if *truth {
		fmt.Println("Ground truth:")
		for asn, t := range w.Truth {
			if t.CGN {
				fmt.Printf("  AS%d cellular=%v realms=%d ranges=%v allocs=%v types=%v timeouts=%v\n",
					asn, t.Cellular, t.Realms, t.Ranges, t.PortAllocs, t.MappingTypes, t.Timeouts)
			}
		}
	}
}

// runSweep drives the campaign engine and prints the aggregate table.
func runSweep(scenarioList string, replicates, workers int, baseSeed int64, portSpan, portQuota, trafficWorkers, trafficShards int, verbose bool) int {
	cfg := campaign.Config{
		Scenarios:      strings.Split(scenarioList, ","),
		Replicates:     replicates,
		BaseSeed:       baseSeed,
		Workers:        workers,
		PortSpan:       portSpan,
		PortQuota:      portQuota,
		TrafficWorkers: trafficWorkers,
		TrafficShards:  trafficShards,
	}
	if verbose {
		cfg.OnWorld = func(r campaign.WorldResult) {
			u := r.Scores["BitTorrent ∪ Netalyzr"]
			fmt.Fprintf(os.Stderr, "  %s seed=%d: union p=%.2f r=%.2f (%v, digest %s)\n",
				r.Scenario, r.Seed, u.Precision(), u.Recall(), r.Elapsed.Round(1e6), r.Digest[:12])
		}
	}
	sw, err := campaign.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cgnsim: %v\n", err)
		return 2
	}
	fmt.Printf("sweep: %d worlds (%d scenarios x %d replicates) on %d workers in %v\n\n",
		len(sw.Worlds), len(cfg.Scenarios), cfg.Replicates, cfg.Workers, sw.Elapsed.Round(1e6))
	fmt.Println(campaign.Render(campaign.Aggregate(sw.Worlds)))
	return 0
}

func renderOne(b *report.Bundle, name string) (string, error) {
	renderers := map[string]func() string{
		"E01": b.E01, "E02": b.E02, "E03": b.E03, "E04": b.E04,
		"E05": b.E05, "E06": b.E06, "E07": b.E07, "E08": b.E08,
		"E09": b.E09, "E10": b.E10, "E11": b.E11, "E12": b.E12,
		"E13": b.E13, "E14": b.E14, "E15": b.E15, "E16": b.E16,
		"E17": b.E17, "E18": b.E18, "E19": b.E19, "E21": b.E21, "E22": b.E22,
		"SCORES": b.Scores,
	}
	fn, ok := renderers[name]
	if !ok {
		return "", fmt.Errorf("unknown experiment %q (E01..E19, E21, E22 or scores)", name)
	}
	return fn(), nil
}
