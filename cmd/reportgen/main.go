// Command reportgen regenerates EXPERIMENTS.md: it runs the full campaign
// on the paper scenario and records, for every experiment, the measured
// output alongside the paper's reference values, so the repository's
// claim of reproduction stays checkable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cgn/internal/internet"
	"cgn/internal/report"
)

// paperNotes pairs each experiment with the values the paper reports, for
// side-by-side comparison in EXPERIMENTS.md.
var paperNotes = map[string]string{
	"E01": "Paper: 38% deployed / 12% considering / 50% no plans; IPv6 32/35/11/22; >40% face scarcity; 3 ISPs report internal-space scarcity.",
	"E02": "Paper: 21.5M queried (15.5M IPs, 18.8K ASes), 192.0M learned (62.1M IPs, 26.7K ASes), 107.7M ping-responded. Scaled world: absolute counts shrink ~3 orders of magnitude; the queried<learned and responded≈56% shapes carry.",
	"E03": "Paper (leaking side): 192X 162.2K IPs/4.1K ASes, 172X 33.9K/1.0K, 10X 194.4K/2.2K, 100X 165.8K/723. Shape: 10X and 100X dominate internal peers; 192X leaks exist but stay isolated.",
	"E04": "Paper Fig 3: AS7922 (Comcast) isolated 1:1 leaks vs AS12874 (FastWEB) dense clusters. Shape: non-CGN exemplar has 1-leaker clusters; CGN exemplar has >=5x5.",
	"E05": "Paper Fig 4: 192X clusters small; 10X/100X clusters large; detection boundary 5x5; ~10% of probed ASes CGN-positive.",
	"E06": "Paper Table 4: cellular IPdev 58.7% 10X / 17.3% 100X / 12.5% unrouted / 5.7% match; non-cell IPdev 92.4% 192X; IPcpe 83% routed match, 8.9% 192X.",
	"E07": "Paper: top-10 filter removes over half of ambiguous sessions, 7.9% of sessions remain candidates, ~15% of covered ASes detected.",
	"E08": "Paper Table 5: BT 5.2% routed covered / 9.4% positive; union 17.1% (PBL) and 18.0% (APNIC) positive among eyeballs; cellular 92.6-94.2% positive.",
	"E09": "Paper Fig 6: APNIC and RIPE show >2x the eyeball CGN penetration of other regions; AFRINIC lowest; cellular high everywhere, AFRINIC ~67%.",
	"E10": "Paper Fig 7: 10X most common, then 100X; ~20% of ASes use multiple ranges; several ASes (TELUS, Sprint, Rogers, T-Mobile, H3G) use routable space internally.",
	"E11": "Paper Fig 8: OS ephemeral ports band vs full-space CGN renumbering; 92% of non-CGN sessions preserve ports; AS12978 allocates 4K chunks.",
	"E12": "Paper Fig 9/Table 6: non-cellular 41.2/22.2/35.6 preservation/sequential/random, cellular 27.9/26.0/44.7; 17 chunk ASes (9+8); 21% arbitrary pooling.",
	"E13": "Paper Table 7: 67.6% detected+mismatch, 30.9% mismatch without expiry, <0.5% stateful without translation.",
	"E14": "Paper Fig 11: 92% of NATs in no-CGN ASes at hop 1; CGNs 2-5 hops (64% non-cellular, 73% cellular); 10% of cellular ASes >=6 hops; max observed 18.",
	"E15": "Paper Fig 12: cellular CGN median 65s, non-cellular 35s, CPE mode 65s; 74% expire within 60s; range 10-200s.",
	"E16": "Paper Fig 13: <2% of CPE sessions symmetric; 11% of non-cellular CGN ASes symmetric-only; cellular bimodal 40% symmetric / 20% full cone.",
	"E17": "Beyond the paper: §6.2 derives users-per-IP vs chunk-size analytically (64 users per IP at 1K chunks); the simulator measures utilization and allocation failures directly, per customers-per-external-IP band.",
	"E18": "Paper §6.2 / Figure 8: per-subscriber concurrent port usage sampled over a week of flow data — the max rides far above the 99th percentile, which rides far above the median. The traffic engine reproduces the ordering under diurnal flow churn; \"Tracking the Big NAT\" motivates the short-timeout churn regime.",
	"E19": "Beyond the paper: §6 assumes cooperative subscribers, but ReDAN (PAPERS.md) demonstrates remote DoS against NAT networks via mapping-table exhaustion. The traffic engine drives adversarial subscribers that flood port allocations plus external scanners probing the pool, measures the collateral allocation-failure rate on legitimate subscribers, and scores a per-subscriber token-bucket limiter and an evict-oldest-idle policy as defenses (registry scenarios flood-attack / flood-defended). The paper scenario carries no adversarial load, so the matrix reports disabled here; `cgnsim -scenario flood-attack -experiment E19` runs it.",
	"E21": "Beyond the paper: the paper's detections are snapshots of a fleet that evolves — Mandalari et al. (\"Tracking the Big NAT across Europe and the U.S.\") track deployments over months and find churn. The fleet engine scripts months of enables/disables/re-provisionings and scores a windowed observer: recall climbs with observation duration because late-onset deployments and sparse vantage sampling only accumulate evidence over weeks.",
	"E22": "Beyond the paper: §7 notes carriers juggle scarce pool space, and Mandalari et al. observe deployments dropping mapping state mid-study — real CGNs fail and restart. The fault engine takes a scheduled fraction of the pool dark mid-run (survivor lanes absorb failover deterministically), reboots a whole engine losing all mappings, and measures the legitimate allocation-failure rate before, during, and after each fault: degradation scales with severity and the failure rate returns under a baseline-derived threshold once capacity is restored.",
}

// generate runs the full campaign and assembles the EXPERIMENTS.md
// document. The golden-file test regenerates it for (paper, 1) and diffs
// against the committed file, so experiment drift can never land
// silently; keep everything that ends up in the document inside this
// function.
func generate(scenario string, seed int64) (string, *report.Bundle, error) {
	sc, err := internet.Lookup(scenario)
	if err != nil {
		return "", nil, err
	}
	sc.Seed = seed

	w := internet.Build(sc)
	b := report.Collect(w)

	var sb strings.Builder
	sb.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	sb.WriteString("Generated by `go run ./cmd/reportgen`")
	fmt.Fprintf(&sb, " (scenario=%s, seed=%d: %d ASes, %d BitTorrent peers, %d Netalyzr sessions, %d true CGN ASes).\n\n",
		scenario, seed, w.DB.Len(), len(w.Swarm.Peers), len(b.Sessions), len(w.CGNTruth()))
	sb.WriteString("The simulated world is ~3 orders of magnitude smaller than the real\n")
	sb.WriteString("Internet, so absolute counts are not comparable; the claims under test\n")
	sb.WriteString("are the *shapes*: who detects what, which categories dominate, where\n")
	sb.WriteString("distributions sit. Each section quotes the paper's numbers, then the\n")
	sb.WriteString("measured output of this repository's pipeline.\n\n")

	exps := []struct {
		id     string
		render func() string
	}{
		{"E01", b.E01}, {"E02", b.E02}, {"E03", b.E03}, {"E04", b.E04},
		{"E05", b.E05}, {"E06", b.E06}, {"E07", b.E07}, {"E08", b.E08},
		{"E09", b.E09}, {"E10", b.E10}, {"E11", b.E11}, {"E12", b.E12},
		{"E13", b.E13}, {"E14", b.E14}, {"E15", b.E15}, {"E16", b.E16},
		{"E17", b.E17}, {"E18", b.E18}, {"E19", b.E19}, {"E21", b.E21},
		{"E22", b.E22},
	}
	for _, e := range exps {
		fmt.Fprintf(&sb, "## %s\n\n", e.id)
		fmt.Fprintf(&sb, "%s\n\n", paperNotes[e.id])
		fmt.Fprintf(&sb, "```\n%s```\n\n", e.render())
	}
	sb.WriteString("## Ground truth scoring\n\n")
	sb.WriteString("The paper validated detections manually; the simulator knows the truth:\n\n")
	fmt.Fprintf(&sb, "```\n%s```\n", b.Scores())
	return sb.String(), b, nil
}

func main() {
	out := flag.String("o", "EXPERIMENTS.md", "output path")
	scenario := flag.String("scenario", "paper", "world scenario: "+strings.Join(internet.Names(), ", "))
	seed := flag.Int64("seed", 1, "world generation seed")
	csvDir := flag.String("csv", "", "also write per-figure CSV data series into this directory")
	flag.Parse()

	doc, b, err := generate(*scenario, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reportgen: %v\n", err)
		os.Exit(2)
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "reportgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *csvDir != "" {
		paths, err := b.WriteCSVs(*csvDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reportgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d CSV series to %s\n", len(paths), *csvDir)
	}
}
