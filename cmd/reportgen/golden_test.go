package main

import (
	"os"
	"strings"
	"testing"
)

// TestExperimentsGolden pins the committed EXPERIMENTS.md byte-for-byte
// to what reportgen produces for (scenario=paper, seed=1). Any change
// that shifts any experiment's output — a renderer tweak, a generator
// draw reordered, an analysis threshold moved — fails here until the
// document is regenerated and the diff reviewed, so experiment drift can
// never land silently.
//
// Regenerate with:
//
//	go run ./cmd/reportgen -o EXPERIMENTS.md
func TestExperimentsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper campaign; skipped in -short mode")
	}
	got, _, err := generate("paper", 1)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("EXPERIMENTS.md drifted from reportgen output at line %d:\n  committed: %q\n  generated: %q\n"+
				"regenerate with `go run ./cmd/reportgen -o EXPERIMENTS.md` and review the diff",
				i+1, w, g)
		}
	}
	t.Fatal("EXPERIMENTS.md differs from reportgen output (length mismatch only)")
}
