// Command analyze runs the detection pipelines offline, over datasets
// captured earlier with `dhtcrawl -o` and `netalyzr -o -routes`:
//
//	go run ./cmd/dhtcrawl  -scenario small -o crawl.json
//	go run ./cmd/netalyzr  -scenario small -o sessions.json -routes routes.json
//	go run ./cmd/analyze   -crawl crawl.json -sessions sessions.json -routes routes.json
//
// Collection and analysis stay decoupled, as in the paper's own workflow:
// the crawl ran for a week, the heuristics evolved afterwards.
package main

import (
	"flag"
	"fmt"
	"os"

	"cgn/internal/dataset"
	"cgn/internal/detect"
	"cgn/internal/props"
	"cgn/internal/routing"
	"cgn/internal/stats"
)

func main() {
	crawlPath := flag.String("crawl", "", "crawl dataset JSON (from dhtcrawl -o)")
	sessPath := flag.String("sessions", "", "session records JSON (from netalyzr -o)")
	routesPath := flag.String("routes", "", "routing snapshot JSON (from netalyzr -routes)")
	minPeers := flag.Int("min-peers", 8, "per-AS crawl depth for BitTorrent coverage")
	flag.Parse()

	if *crawlPath == "" && *sessPath == "" {
		fmt.Fprintln(os.Stderr, "analyze: need -crawl and/or -sessions")
		os.Exit(2)
	}

	global := routing.NewGlobal()
	if *routesPath != "" {
		g, err := dataset.LoadRoutes(*routesPath)
		fatalIf(err)
		global = g
		fmt.Printf("routes: %d prefixes\n", global.NumPrefixes())
	}

	var views []detect.MethodView

	if *crawlPath != "" {
		ds, err := dataset.LoadCrawl(*crawlPath)
		fatalIf(err)
		fmt.Printf("crawl: %d queried, %d learned, %d leaks\n",
			len(ds.Queried), len(ds.Learned), len(ds.Leaks))
		bt := detect.AnalyzeBitTorrent(ds, detect.BTConfig{MinPeersQueried: *minPeers})
		fmt.Printf("BitTorrent: %d covered, %d CGN-positive, %d VPN-excluded\n",
			len(bt.CoveredASes()), len(bt.PositiveASes()), bt.ExcludedVPN)
		for _, asn := range bt.PositiveASes() {
			as := bt.PerAS[asn]
			fmt.Printf("  AS%d ranges=%v\n", asn, as.CGNRanges)
		}
		views = append(views, detect.BTView(bt))
	}

	if *sessPath != "" {
		sessions, err := dataset.LoadSessions(*sessPath)
		fatalIf(err)
		fmt.Printf("sessions: %d\n", len(sessions))
		if *routesPath == "" {
			fmt.Fprintln(os.Stderr, "analyze: warning: no -routes snapshot; all public space counts as unrouted")
		}
		cell := detect.AnalyzeCellular(sessions, global, detect.NLConfig{})
		noncell := detect.AnalyzeNonCellular(sessions, global, detect.NLConfig{})
		fmt.Printf("Netalyzr cellular: %d covered, %d positive\n",
			len(cell.CoveredASes()), len(cell.PositiveASes()))
		fmt.Printf("Netalyzr non-cellular: %d covered, %d positive\n",
			len(noncell.CoveredASes()), len(noncell.PositiveASes()))
		views = append(views, detect.CellularView(cell), detect.NonCellularView(noncell))

		// Property highlights over the combined verdict.
		union := detect.Union("all", views...)
		ports := props.AnalyzePorts(sessions, union.Positive, props.PortConfig{})
		shares := stats.Freq[props.PortStrategy]{}
		for _, as := range ports.PerAS {
			shares.Add(as.Dominant())
		}
		fmt.Printf("port strategies (dominant per CGN AS): %v\n", shares)
		if chunked := ports.ChunkASes(); len(chunked) > 0 {
			for _, as := range chunked {
				fmt.Printf("  chunk-based: AS%d, ~%d ports/subscriber\n", as.ASN, as.ChunkSize)
			}
		}
		quad := props.AnalyzeTTLDetection(sessions)
		if quad.Total() > 0 {
			fmt.Printf("TTL outcomes: %d detected+mismatch, %d mismatch-only, %d stateful-only, %d clean\n",
				quad.DetectedMismatch, quad.UndetectedMismatch, quad.DetectedMatch, quad.UndetectedMatch)
		}
	}

	if len(views) > 1 {
		union := detect.Union("union", views...)
		positive := make([]uint32, 0, len(union.Positive))
		for asn := range union.Positive {
			positive = append(positive, asn)
		}
		fmt.Printf("union: %d covered ASes, %d CGN-positive\n", len(union.Covered), len(positive))
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
}
