// Command benchjson runs the repository's hot-path micro-benchmarks
// (internal/perf — the same bodies `go test -bench` runs) through
// testing.Benchmark and writes the results as machine-readable JSON.
//
// Each emitted file is one point of the repository's perf trajectory:
// BENCH_1.json, BENCH_2.json, ... are committed alongside the changes
// they measure, so "how fast was forwarding three PRs ago" is a question
// answerable from the tree itself, and CI can benchstat any two points.
//
// Usage:
//
//	benchjson [-o FILE] [-bench REGEX] [-note TEXT]
//
// With no -o the next free BENCH_<n>.json in the current directory is
// chosen.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"cgn/internal/perf"
)

// result is one benchmark measurement.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	// Workers and Shards (schema 2) record the concurrency shape a
	// parallel benchmark ran at — traffic-engine realm workers and NAT
	// shards per realm; absent for single-threaded bodies.
	Workers int `json:"workers,omitempty"`
	Shards  int `json:"shards,omitempty"`
	// GOMAXPROCS (schema 3) is set when the benchmark pinned its own
	// GOMAXPROCS for the measurement (multicore variants); absent means
	// the entry ran at the document-level gomaxprocs.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
}

// document is the emitted file layout.
type document struct {
	// Schema versions the layout for future tooling. Schema 2 added the
	// top-level gomaxprocs and the per-benchmark workers/shards fields;
	// schema 3 added the per-benchmark gomaxprocs override for variants
	// that pin their own parallelism.
	Schema    int    `json:"schema"`
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS is the parallelism the process measured under —
	// parallel benchmarks size their pools from it.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Note carries free-form provenance (e.g. the commit measured).
	Note       string   `json:"note,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output path (default: next free BENCH_<n>.json)")
	pattern := flag.String("bench", ".", "regexp selecting benchmarks by name")
	note := flag.String("note", "", "free-form provenance note stored in the file")
	flag.Parse()

	re, err := regexp.Compile(*pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -bench regexp: %v\n", err)
		os.Exit(2)
	}

	doc := document{
		Schema:     3,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
	}
	for _, bm := range perf.All() {
		if !re.MatchString(bm.Name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: running %s...\n", bm.Name)
		r := testing.Benchmark(bm.F)
		res := result{
			Name:        bm.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Workers:     bm.Workers,
			Shards:      bm.Shards,
			GOMAXPROCS:  bm.Procs,
		}
		if r.Bytes > 0 && r.T > 0 {
			res.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
		fmt.Fprintf(os.Stderr, "benchjson:   %.1f ns/op, %d allocs/op (%d iterations)\n",
			res.NsPerOp, res.AllocsPerOp, res.Iterations)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks match %q\n", *pattern)
		os.Exit(2)
	}

	path := *out
	if path == "" {
		path = nextFree()
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(path)
}

// nextFree picks the first unused BENCH_<n>.json in the current
// directory, so successive runs extend the trajectory.
func nextFree() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
