// Command netalyzr runs only the active measurement side: the full
// session battery (address collection, UPnP, ten sequential TCP flows,
// STUN classification, TTL-driven NAT enumeration) from every provisioned
// vantage point, then prints the §4.2 detection results and raw session
// records on request.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cgn/internal/dataset"
	"cgn/internal/detect"
	"cgn/internal/internet"
)

func main() {
	scenario := flag.String("scenario", "paper", "world scenario: "+strings.Join(internet.Names(), ", "))
	seed := flag.Int64("seed", 1, "world generation seed")
	dump := flag.Int("dump", 0, "print the first N raw session records")
	out := flag.String("o", "", "write the session records to this JSON file")
	routes := flag.String("routes", "", "write a routing-table snapshot to this JSON file (for cmd/analyze)")
	flag.Parse()

	sc, err := internet.Lookup(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netalyzr: %v\n", err)
		os.Exit(2)
	}
	sc.Seed = *seed

	w := internet.Build(sc)
	sessions := w.RunNetalyzr()
	fmt.Printf("campaign: %d sessions\n", len(sessions))
	if *out != "" {
		if err := dataset.SaveSessions(*out, sessions); err != nil {
			fmt.Fprintf(os.Stderr, "netalyzr: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("sessions written to %s\n", *out)
	}
	if *routes != "" {
		if err := dataset.SaveRoutes(*routes, w.Net.Global()); err != nil {
			fmt.Fprintf(os.Stderr, "netalyzr: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("routing snapshot written to %s\n", *routes)
	}

	cell := detect.AnalyzeCellular(sessions, w.Net.Global(), detect.NLConfig{})
	noncell := detect.AnalyzeNonCellular(sessions, w.Net.Global(), detect.NLConfig{})
	truth := w.CGNTruth()

	cs := detect.CellularView(cell).ScoreAgainstTruth(truth)
	fmt.Printf("cellular: %d covered, %d positive; precision=%.2f recall=%.2f\n",
		len(cell.CoveredASes()), len(cell.PositiveASes()), cs.Precision(), cs.Recall())
	ns := detect.NonCellularView(noncell).ScoreAgainstTruth(truth)
	fmt.Printf("non-cellular: %d covered, %d positive; precision=%.2f recall=%.2f\n",
		len(noncell.CoveredASes()), len(noncell.PositiveASes()), ns.Precision(), ns.Recall())

	for i := 0; i < *dump && i < len(sessions); i++ {
		s := sessions[i]
		fmt.Printf("session %d: AS%d cellular=%v IPdev=%v IPcpe=%v(%v) IPpub=%v flows=%d stun=%v ttlNATs=%d\n",
			i, s.ASN, s.Cellular, s.IPdev, s.IPcpe, s.HasCPE, s.IPpub, len(s.Flows),
			s.STUNResult.Class, len(s.TTLResult.NATs))
	}
}
