// Command stunprobe classifies the NAT in front of this machine (or of a
// simulated client) using the RFC 3489 test battery implemented in
// internal/stun.
//
// Two modes:
//
//	stunprobe -server host:port     classify against a real STUN server
//	                                over UDP (requires network access)
//	stunprobe -demo                 run the classifier through simulated
//	                                NATs of every type (offline)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/netalyzr"
	"cgn/internal/simnet"
	"cgn/internal/stun"
)

func main() {
	server := flag.String("server", "", "STUN server endpoint (ip:port) for live mode")
	timeout := flag.Duration("timeout", 2*time.Second, "per-exchange timeout in live mode")
	demo := flag.Bool("demo", false, "classify simulated NATs of every type")
	flag.Parse()

	switch {
	case *demo:
		runDemo()
	case *server != "":
		runLive(*server, *timeout)
	default:
		fmt.Fprintln(os.Stderr, "stunprobe: need -server host:port or -demo")
		os.Exit(2)
	}
}

// udpRoundTripper adapts a real UDP socket to stun.RoundTripper.
type udpRoundTripper struct {
	conn    *net.UDPConn
	timeout time.Duration
}

func (u *udpRoundTripper) RoundTrip(dst netaddr.Endpoint, payload []byte) (netaddr.Endpoint, []byte, bool) {
	raddr := &net.UDPAddr{IP: net.IP(dst.Addr.Bytes()), Port: int(dst.Port)}
	if _, err := u.conn.WriteToUDP(payload, raddr); err != nil {
		return netaddr.Endpoint{}, nil, false
	}
	u.conn.SetReadDeadline(time.Now().Add(u.timeout))
	buf := make([]byte, 1500)
	n, from, err := u.conn.ReadFromUDP(buf)
	if err != nil {
		return netaddr.Endpoint{}, nil, false
	}
	fromAddr, ok := netaddr.AddrFromBytes(from.IP.To4())
	if !ok {
		return netaddr.Endpoint{}, nil, false
	}
	return netaddr.EndpointOf(fromAddr, uint16(from.Port)), buf[:n], true
}

func (u *udpRoundTripper) LocalEndpoint() netaddr.Endpoint {
	la := u.conn.LocalAddr().(*net.UDPAddr)
	addr, _ := netaddr.AddrFromBytes(la.IP.To4())
	return netaddr.EndpointOf(addr, uint16(la.Port))
}

func runLive(server string, timeout time.Duration) {
	dst, err := netaddr.ParseEndpoint(server)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stunprobe: %v\n", err)
		os.Exit(2)
	}
	conn, err := net.ListenUDP("udp4", nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stunprobe: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	rt := &udpRoundTripper{conn: conn, timeout: timeout}
	res, err := stun.Classify(rt, dst, rand.New(rand.NewSource(time.Now().UnixNano())))
	if err != nil {
		fmt.Fprintf(os.Stderr, "stunprobe: %v\n", err)
		os.Exit(1)
	}
	printResult(res)
}

func runDemo() {
	types := []nat.MappingType{nat.Symmetric, nat.PortRestricted, nat.AddressRestricted, nat.FullCone}
	for _, typ := range types {
		n := simnet.New()
		rng := rand.New(rand.NewSource(7))
		servers := netalyzr.DeployServers(n, netalyzr.DefaultServersConfig(), rng)
		isp := n.NewRealm("isp", 1)
		n.AttachNAT("cgn", isp, n.Public(), nat.Config{
			Type:        typ,
			PortAlloc:   nat.Random,
			Pooling:     nat.Paired,
			ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.40")},
			Seed:        11,
		}, 2, 1)
		client := n.NewHost("client", isp, netaddr.MustParseAddr("100.64.0.9"), 0, rng)

		sess := netalyzr.RunSession(client, servers, netalyzr.ClientConfig{ASN: 65001, Cellular: true, RunSTUN: true})
		fmt.Printf("configured NAT: %-24s ", typ)
		if sess.STUNRan {
			printResult(sess.STUNResult)
		} else {
			fmt.Println("STUN failed")
		}
	}
}

func printResult(res stun.Result) {
	fmt.Printf("class=%s local=%v mapped=%v", res.Class, res.Local, res.MappedPrimary)
	if !res.MappedAlternate.IsZero() {
		fmt.Printf(" mappedAlt=%v", res.MappedAlternate)
	}
	fmt.Println()
}
