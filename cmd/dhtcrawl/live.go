package main

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"cgn/internal/crawler"
	"cgn/internal/dataset"
	"cgn/internal/krpc"
	"cgn/internal/netaddr"
	"cgn/internal/routing"
)

// udpTransport adapts a real UDP socket to crawler.Transport for live
// crawls of the mainline DHT. Requires network access; the offline test
// suite never exercises it.
type udpTransport struct {
	conn *net.UDPConn
	buf  []byte
}

func newUDPTransport() (*udpTransport, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{Port: 6881})
	if err != nil {
		// 6881 taken: let the OS pick.
		conn, err = net.ListenUDP("udp4", nil)
		if err != nil {
			return nil, err
		}
	}
	return &udpTransport{conn: conn, buf: make([]byte, 2048)}, nil
}

func (u *udpTransport) Send(dst netaddr.Endpoint, payload []byte) {
	raddr := &net.UDPAddr{IP: net.IP(dst.Addr.Bytes()), Port: int(dst.Port)}
	u.conn.WriteToUDP(payload, raddr)
}

func (u *udpTransport) Endpoint() netaddr.Endpoint {
	la := u.conn.LocalAddr().(*net.UDPAddr)
	ip := la.IP.To4()
	if ip == nil {
		ip = net.IPv4zero.To4()
	}
	addr, _ := netaddr.AddrFromBytes(ip)
	return netaddr.EndpointOf(addr, uint16(la.Port))
}

func (u *udpTransport) Poll(fn func(from netaddr.Endpoint, data []byte), wait time.Duration) {
	deadline := time.Now().Add(wait)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return
		}
		u.conn.SetReadDeadline(deadline)
		n, from, err := u.conn.ReadFromUDP(u.buf)
		if err != nil {
			return // deadline or transient error: the datagram is lost, as UDP promises
		}
		ip := from.IP.To4()
		if ip == nil {
			continue
		}
		addr, _ := netaddr.AddrFromBytes(ip)
		pkt := make([]byte, n)
		copy(pkt, u.buf[:n])
		fn(netaddr.EndpointOf(addr, uint16(from.Port)), pkt)
	}
}

// runLive crawls the real mainline DHT from this machine. bootstraps is a
// comma-free list of ip:port seeds (e.g. a resolved router.bittorrent.com
// address); routesPath optionally maps addresses to ASes for the
// clustering step.
func runLive(bootstraps []string, routesPath, outPath string, maxPeers int) {
	tr, err := newUDPTransport()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dhtcrawl: %v\n", err)
		os.Exit(1)
	}
	global := routing.NewGlobal()
	if routesPath != "" {
		g, err := dataset.LoadRoutes(routesPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dhtcrawl: %v\n", err)
			os.Exit(1)
		}
		global = g
	} else {
		fmt.Fprintln(os.Stderr, "dhtcrawl: warning: no -routes snapshot; leak records will carry AS 0")
	}

	cfg := crawler.DefaultConfig()
	cfg.MaxPeers = maxPeers
	cfg.CallTimeout = 1500 * time.Millisecond
	var id krpc.NodeID
	rand.New(rand.NewSource(time.Now().UnixNano())).Read(id[:])
	cfg.ID = id

	cr := crawler.NewWithTransport(tr, global, cfg)
	for _, b := range bootstraps {
		ep, err := netaddr.ParseEndpoint(b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dhtcrawl: bad bootstrap %q: %v\n", b, err)
			os.Exit(2)
		}
		cr.Seed(ep)
	}
	fmt.Printf("live crawl from %v, budget %d peers...\n", tr.Endpoint(), maxPeers)
	ds := cr.Run()
	fmt.Printf("crawl: %d peers queried, %d learned, %d ping-responded, %d leak records\n",
		len(ds.Queried), len(ds.Learned), len(ds.PingResponded), len(ds.Leaks))
	if outPath != "" {
		if err := dataset.SaveCrawl(outPath, ds); err != nil {
			fmt.Fprintf(os.Stderr, "dhtcrawl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dataset written to %s\n", outPath)
	}
}
