// Command dhtcrawl runs only the BitTorrent side of the methodology: it
// generates a world, drives the swarm, crawls the DHT exactly as §4.1
// describes (5 random-target find_node queries per peer, batches of 10 on
// internal-peer leakage) and prints the crawl dataset (Tables 2 and 3)
// plus the per-AS clustering verdicts.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cgn/internal/dataset"
	"cgn/internal/detect"
	"cgn/internal/internet"
	"cgn/internal/netaddr"
)

func main() {
	scenario := flag.String("scenario", "paper", "world scenario: "+strings.Join(internet.Names(), ", "))
	seed := flag.Int64("seed", 1, "world generation seed")
	verbose := flag.Bool("v", false, "print per-AS cluster details")
	out := flag.String("o", "", "write the crawl dataset to this JSON file")
	live := flag.String("live", "", "crawl the REAL mainline DHT, seeded from this ip:port (requires network access and authorization to probe)")
	routesPath := flag.String("routes", "", "routing snapshot for AS resolution in live mode")
	maxPeers := flag.Int("max-peers", 1000, "live-mode crawl budget")
	flag.Parse()

	if *live != "" {
		runLive([]string{*live}, *routesPath, *out, *maxPeers)
		return
	}

	sc, err := internet.Lookup(*scenario)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dhtcrawl: %v\n", err)
		os.Exit(2)
	}
	sc.Seed = *seed

	w := internet.Build(sc)
	ds := w.RunCrawl(internet.DefaultCrawlOptions())

	fmt.Printf("crawl: %d peers queried, %d learned, %d ping-responded, %d leak records\n",
		len(ds.Queried), len(ds.Learned), len(ds.PingResponded), len(ds.Leaks))
	if *out != "" {
		if err := dataset.SaveCrawl(*out, ds); err != nil {
			fmt.Fprintf(os.Stderr, "dhtcrawl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dataset written to %s\n", *out)
	}

	res := detect.AnalyzeBitTorrent(ds, w.BTDetectConfig())
	covered, positive := res.CoveredASes(), res.PositiveASes()
	fmt.Printf("detection: %d ASes covered, %d CGN-positive, %d VPN-excluded internal peers\n",
		len(covered), len(positive), res.ExcludedVPN)

	truth := w.CGNTruth()
	score := detect.BTView(res).ScoreAgainstTruth(truth)
	fmt.Printf("vs ground truth: tp=%d fp=%d fn=%d precision=%.2f recall=%.2f\n",
		score.TruePositive, score.FalsePositive, score.FalseNegative, score.Precision(), score.Recall())

	if *verbose {
		asns := make([]uint32, 0, len(res.PerAS))
		for asn := range res.PerAS {
			asns = append(asns, asn)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		for _, asn := range asns {
			as := res.PerAS[asn]
			if len(as.Clusters) == 0 {
				continue
			}
			fmt.Printf("AS%d queried=%d cgn=%v truth=%v\n", asn, as.QueriedPeers, as.CGN, truth[asn])
			for _, r := range netaddr.ReservedRanges {
				if cs, ok := as.Clusters[r]; ok {
					fmt.Printf("  %-5s largest cluster %d x %d\n", r, cs.LeakerIPs, cs.InternalIPs)
				}
			}
		}
	}
}
